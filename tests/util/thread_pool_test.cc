#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/execution_context.h"

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(ThreadPoolTest, ChunkBoundsPartitionTheRange) {
  // Chunks tile [0, n) exactly: contiguous, disjoint, no gaps.
  for (uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
    for (unsigned t : {1u, 2u, 3u, 8u, 16u}) {
      EXPECT_EQ(ThreadPool::ChunkBegin(n, t, 0), 0u);
      EXPECT_EQ(ThreadPool::ChunkBegin(n, t, t), n);
      for (unsigned c = 0; c < t; ++c) {
        EXPECT_LE(ThreadPool::ChunkBegin(n, t, c),
                  ThreadPool::ChunkBegin(n, t, c + 1));
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkSizesAreBalanced) {
  // No chunk is more than one element larger than any other.
  const uint64_t n = 1003;
  const unsigned t = 8;
  uint64_t min_size = n, max_size = 0;
  for (unsigned c = 0; c < t; ++c) {
    uint64_t size =
        ThreadPool::ChunkBegin(n, t, c + 1) - ThreadPool::ChunkBegin(n, t, c);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(10, [&](unsigned worker, uint64_t begin, uint64_t end) {
    EXPECT_EQ(worker, 0u);
    for (uint64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  for (unsigned t : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(t);
    const uint64_t n = 257;  // prime-ish, not a multiple of any t
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](unsigned, uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, WorkerIndexMatchesChunk) {
  // Determinism hinges on worker i always executing chunk i.
  ThreadPool pool(4);
  const uint64_t n = 100;
  pool.ParallelFor(n, [&](unsigned worker, uint64_t begin, uint64_t end) {
    EXPECT_EQ(begin, ThreadPool::ChunkBegin(n, 4, worker));
    EXPECT_EQ(end, ThreadPool::ChunkBegin(n, 4, worker + 1));
  });
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](unsigned, uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, MoreThreadsThanItems) {
  // 8 chunks over 3 items: most chunks are empty ranges; all items covered.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](unsigned, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](unsigned worker, uint64_t, uint64_t) {
                         if (worker == 2) throw std::runtime_error("chunk 2");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  // When several chunks throw, the caller sees the lowest-indexed one --
  // the same error a sequential run would have hit first.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(100, [&](unsigned worker, uint64_t, uint64_t) {
      throw std::runtime_error("chunk " + std::to_string(worker));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](unsigned, uint64_t, uint64_t) { throw 42; }),
               int);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](unsigned, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, ContextOverloadCoversEveryIndexOnce) {
  // The sliced (context-aware) overload must visit exactly the same indices
  // as the plain one, slice boundaries included.
  ExecutionContext ctx;
  ctx.set_timeout_ms(60000);  // non-unlimited so the sliced path runs
  for (unsigned t : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(t);
    const uint64_t n = 3 * ThreadPool::kSliceItems + 17;
    std::vector<std::atomic<int>> hits(n);
    Status s =
        pool.ParallelFor(n, ctx, [&](unsigned, uint64_t begin, uint64_t end) {
          for (uint64_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    ASSERT_TRUE(s.ok());
    for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ContextOverloadSlicesRespectChunkBounds) {
  // Slices stay within the worker's deterministic chunk and arrive in order.
  ExecutionContext ctx;
  ctx.set_timeout_ms(60000);
  ThreadPool pool(4);
  const uint64_t n = 4 * ThreadPool::kSliceItems + 100;
  std::vector<uint64_t> next_begin(4);
  for (unsigned c = 0; c < 4; ++c) {
    next_begin[c] = ThreadPool::ChunkBegin(n, 4, c);
  }
  Status s = pool.ParallelFor(
      n, ctx, [&](unsigned worker, uint64_t begin, uint64_t end) {
        EXPECT_EQ(begin, next_begin[worker]);
        EXPECT_LE(end, ThreadPool::ChunkBegin(n, 4, worker + 1));
        EXPECT_LE(end - begin, ThreadPool::kSliceItems);
        next_begin[worker] = end;
      });
  ASSERT_TRUE(s.ok());
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(next_begin[c], ThreadPool::ChunkBegin(n, 4, c + 1));
  }
}

TEST(ThreadPoolTest, CancellationStopsBetweenSlices) {
  CancelToken token;
  ExecutionContext ctx;
  ctx.set_cancel_token(&token);
  for (unsigned t : {1u, 2u, 8u}) {
    ThreadPool pool(t);
    std::atomic<uint64_t> items{0};
    const uint64_t n = 100 * ThreadPool::kSliceItems;
    Status s = pool.ParallelFor(
        n, ctx, [&](unsigned, uint64_t begin, uint64_t end) {
          items.fetch_add(end - begin, std::memory_order_relaxed);
          token.Cancel();  // first slice of any worker cancels the run
        });
    EXPECT_EQ(s.code(), StatusCode::kCancelled) << t;
    // Each worker processes at most one slice after the flag flips.
    EXPECT_LE(items.load(), uint64_t{t} * ThreadPool::kSliceItems) << t;
  }
}

TEST(ThreadPoolTest, ExpiredDeadlineFailsBeforeAnyWork) {
  ExecutionContext ctx;
  ctx.set_deadline(ExecutionContext::Clock::now() -
                   std::chrono::milliseconds(1));
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  Status s = pool.ParallelFor(
      1 << 20, ctx, [&](unsigned, uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, UnlimitedContextMatchesPlainOverload) {
  // Same coverage, and OK status, when the context can never fail.
  ThreadPool pool(4);
  const uint64_t n = 10000;
  std::atomic<uint64_t> sum{0};
  Status s = pool.ParallelFor(n, ExecutionContext(),
                              [&](unsigned, uint64_t begin, uint64_t end) {
                                for (uint64_t i = begin; i < end; ++i) {
                                  sum.fetch_add(i, std::memory_order_relaxed);
                                }
                              });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ManySmallBatches) {
  // Stress the ready/done handshake: many batches back to back.
  ThreadPool pool(4);
  uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(round % 7, [&](unsigned, uint64_t begin, uint64_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    total += sum.load();
    ASSERT_EQ(sum.load(), static_cast<uint64_t>(round % 7));
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace nsky::util
