#include "util/strings.h"

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(SplitFields, BasicWhitespace) {
  auto f = SplitFields("12 34\t56");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "12");
  EXPECT_EQ(f[1], "34");
  EXPECT_EQ(f[2], "56");
}

TEST(SplitFields, SkipsEmptyPieces) {
  auto f = SplitFields("  a   b  ");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
}

TEST(SplitFields, EmptyInput) {
  EXPECT_TRUE(SplitFields("").empty());
  EXPECT_TRUE(SplitFields("   ").empty());
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(Trim("  x y \r\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(ParseUint64, ValidValues) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
}

TEST(ParseUint64, RejectsMalformed) {
  uint64_t v = 99;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_EQ(v, 99u);  // untouched on failure
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(WithThousands, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(1000000000), "1,000,000,000");
}

}  // namespace
}  // namespace nsky::util
