#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusCodeName, AllNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(Status, RuntimeErrorToString) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DEADLINE_EXCEEDED: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "CANCELLED: stop");
  EXPECT_EQ(Status::ResourceExhausted("oom").ToString(),
            "RESOURCE_EXHAUSTED: oom");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

}  // namespace
}  // namespace nsky::util
