#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusCodeName, AllNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusCodeTable, PinsCliExitCodes) {
  // The canonical mapping scripts depend on; a drift here is a breaking
  // change to every consumer of `nsky` exit codes.
  EXPECT_EQ(CliExitCode(StatusCode::kOk), 0);
  EXPECT_EQ(CliExitCode(StatusCode::kInvalidArgument), 2);
  EXPECT_EQ(CliExitCode(StatusCode::kNotFound), 1);
  EXPECT_EQ(CliExitCode(StatusCode::kIoError), 1);
  EXPECT_EQ(CliExitCode(StatusCode::kOutOfRange), 1);
  EXPECT_EQ(CliExitCode(StatusCode::kDeadlineExceeded), 4);
  EXPECT_EQ(CliExitCode(StatusCode::kCancelled), 5);
  EXPECT_EQ(CliExitCode(StatusCode::kResourceExhausted), 6);
  EXPECT_EQ(CliExitCode(StatusCode::kUnavailable), 7);
}

TEST(StatusCodeTable, PinsHttpStatuses) {
  EXPECT_EQ(HttpStatusFor(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFor(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusFor(StatusCode::kIoError), 500);
  EXPECT_EQ(HttpStatusFor(StatusCode::kOutOfRange), 400);
  EXPECT_EQ(HttpStatusFor(StatusCode::kDeadlineExceeded), 408);
  EXPECT_EQ(HttpStatusFor(StatusCode::kCancelled), 499);
  EXPECT_EQ(HttpStatusFor(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(HttpStatusFor(StatusCode::kUnavailable), 503);
}

TEST(StatusCodeTable, RowsAreSelfConsistent) {
  // Every row's embedded code matches the code used to look it up, and the
  // name/exit/http shorthands all read the same row.
  for (int i = 0; i <= static_cast<int>(StatusCode::kUnavailable); ++i) {
    const StatusCode code = static_cast<StatusCode>(i);
    const StatusCodeInfo& info = GetStatusCodeInfo(code);
    EXPECT_EQ(info.code, code);
    EXPECT_STREQ(info.name, StatusCodeName(code));
    EXPECT_EQ(info.cli_exit_code, CliExitCode(code));
    EXPECT_EQ(info.http_status, HttpStatusFor(code));
    EXPECT_NE(info.http_reason[0], '\0');
  }
}

TEST(Status, UnavailableFactory) {
  Status s = Status::Unavailable("draining");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "UNAVAILABLE: draining");
}

TEST(Status, RuntimeErrorToString) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DEADLINE_EXCEEDED: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "CANCELLED: stop");
  EXPECT_EQ(Status::ResourceExhausted("oom").ToString(),
            "RESOURCE_EXHAUSTED: oom");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(Result, MutableAccess) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

}  // namespace
}  // namespace nsky::util
