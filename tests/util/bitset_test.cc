#include "util/bitset.h"

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  for (size_t i = 0; i < b.size(); ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Bitset, SetClearTest) {
  Bitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitset, ResetClearsEverything) {
  Bitset b(200);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  ASSERT_GT(b.Count(), 0u);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.size(), 200u);
}

TEST(Bitset, SubsetReflexiveAndStrict) {
  Bitset a(128), b(128);
  a.Set(3);
  a.Set(77);
  b.Set(3);
  b.Set(77);
  b.Set(100);
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(Bitset, EmptyIsSubsetOfAnything) {
  Bitset a(64), b(64);
  b.Set(5);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(Bitset, AndOrOperators) {
  Bitset a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  Bitset c = a;
  c &= b;
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_TRUE(c.Test(65));
  Bitset d = a;
  d |= b;
  EXPECT_EQ(d.Count(), 3u);
}

TEST(Bitset, EqualityComparesSizeAndBits) {
  Bitset a(64), b(64), c(65);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  a.Set(10);
  EXPECT_FALSE(a == b);
  b.Set(10);
  EXPECT_TRUE(a == b);
}

TEST(Bitset, ResizeGrowKeepsBitsAndShrinkTruncates) {
  Bitset b(10);
  b.Set(3);
  b.Resize(100);
  EXPECT_TRUE(b.Test(3));
  EXPECT_EQ(b.Count(), 1u);
  b.Set(90);
  b.Resize(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.Test(3));
  EXPECT_EQ(b.Count(), 1u);  // bit 90 gone
}

TEST(Bitset, WordAccess) {
  Bitset b(128);
  b.Set(0);
  b.Set(64);
  ASSERT_EQ(b.num_words(), 2u);
  EXPECT_EQ(b.word(0), 1ull);
  EXPECT_EQ(b.word(1), 1ull);
}

TEST(Bitset, ZeroSize) {
  Bitset b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
}

}  // namespace
}  // namespace nsky::util
