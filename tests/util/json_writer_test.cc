#include "util/json_writer.h"

#include <limits>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_TRUE(w.Complete());
  EXPECT_EQ(std::move(w).Take(), "{}");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "bench");
  w.Key("rows");
  w.BeginArray();
  w.BeginObject();
  w.KV("x", static_cast<uint64_t>(1));
  w.KV("y", 2.5);
  w.EndObject();
  w.BeginObject();
  w.KV("ok", true);
  w.Key("null_field");
  w.Null();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"name\":\"bench\",\"rows\":[{\"x\":1,\"y\":2.5},"
            "{\"ok\":true,\"null_field\":null}]}");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  JsonWriter w;
  w.BeginObject();
  w.KV("we\"ird", "line\nbreak");
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{\"we\\\"ird\":\"line\\nbreak\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonWriter, NegativeAndLargeNumbers) {
  JsonWriter w;
  w.BeginArray();
  w.Int(-123);
  w.UInt(18446744073709551615ull);
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[-123,18446744073709551615]");
}

TEST(JsonWriter, IncompleteDocumentIsNotComplete) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_FALSE(w.Complete());
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.KV("s", "a\"b\\c\nnewline");
  w.KV("i", static_cast<int64_t>(-7));
  w.KV("d", 0.125);
  w.Key("arr");
  w.BeginArray();
  w.UInt(1);
  w.UInt(2);
  w.UInt(3);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.KV("deep", true);
  w.EndObject();
  w.EndObject();
  std::string doc = std::move(w).Take();

  std::string error;
  auto v = JsonParse(doc, &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("s")->str, "a\"b\\c\nnewline");
  EXPECT_EQ(v->Find("i")->number, -7);
  EXPECT_EQ(v->Find("d")->number, 0.125);
  ASSERT_TRUE(v->Find("arr")->is_array());
  EXPECT_EQ(v->Find("arr")->array.size(), 3u);
  EXPECT_EQ(v->Find("arr")->array[1].number, 2);
  EXPECT_TRUE(v->Find("nested")->Find("deep")->boolean);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParse, ParsesLiteralsAndWhitespace) {
  auto v = JsonParse("  [ true , false , null , -1.5e2 ]  ");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->array.size(), 4u);
  EXPECT_TRUE(v->array[0].boolean);
  EXPECT_FALSE(v->array[1].boolean);
  EXPECT_TRUE(v->array[2].is_null());
  EXPECT_EQ(v->array[3].number, -150.0);
}

TEST(JsonParse, ParsesUnicodeEscapes) {
  auto v = JsonParse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str, "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(JsonParse("{", &error).has_value());
  EXPECT_FALSE(JsonParse("[1,]", &error).has_value());
  EXPECT_FALSE(JsonParse("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(JsonParse("\"unterminated", &error).has_value());
  EXPECT_FALSE(JsonParse("[1] trailing", &error).has_value());
  EXPECT_FALSE(JsonParse("", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos);
}

}  // namespace
}  // namespace nsky::util
