#include "util/rng.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextUint64(1), 0u);
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUint64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, WeightedSamplingFollowsWeights) {
  Rng rng(13);
  // Cumulative weights: 1, 1+3 -> item 1 should appear ~75% of the time.
  std::vector<double> cum = {1.0, 4.0};
  int ones = 0;
  for (int i = 0; i < 40000; ++i) {
    size_t pick = rng.NextWeighted(cum);
    ASSERT_LT(pick, 2u);
    ones += pick == 1;
  }
  EXPECT_NEAR(ones / 40000.0, 0.75, 0.02);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Low bits of consecutive inputs should not be correlated.
  int same_low = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if ((Mix64(i) & 1) == (Mix64(i + 1) & 1)) ++same_low;
  }
  EXPECT_GT(same_low, 10);
  EXPECT_LT(same_low, 54);
}

}  // namespace
}  // namespace nsky::util
