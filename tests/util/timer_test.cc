#include "util/timer.h"

#include <gtest/gtest.h>

#include <type_traits>

#include "util/execution_context.h"

namespace nsky::util {
namespace {

// Every duration in the library must come off a monotonic clock: a
// system_clock jump (NTP) would corrupt latency percentiles and deadlines.
// Compile-time guards so the clock choice cannot regress silently.
static_assert(Timer::Clock::is_steady,
              "Timer must measure on a monotonic clock");
static_assert(ExecutionContext::Clock::is_steady,
              "deadlines must be checked against a monotonic clock");
static_assert(std::is_same_v<Timer::Clock, std::chrono::steady_clock>,
              "Timer::Clock is the canonical steady_clock");

TEST(Timer, ClockIsSteady) {
  // Runtime echo of the static_asserts above, so the property shows up in
  // the test report too.
  EXPECT_TRUE(Timer::Clock::is_steady);
  EXPECT_TRUE(ExecutionContext::Clock::is_steady);
}

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, RestartResets) {
  Timer t;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double before = t.Seconds();
  t.Restart();
  EXPECT_LE(t.Seconds(), before + 1e-3);
}

TEST(Timer, UnitConversions) {
  Timer t;
  double s = t.Seconds();
  EXPECT_NEAR(t.Millis(), s * 1e3, s * 1e3 + 10.0);
  EXPECT_GE(t.Micros(), 0.0);
}

TEST(FormatSeconds, PicksUnit) {
  EXPECT_EQ(FormatSeconds(2.5), "2.500 s");
  EXPECT_EQ(FormatSeconds(0.0125), "12.500 ms");
  EXPECT_EQ(FormatSeconds(0.0000425), "42.5 us");
}

}  // namespace
}  // namespace nsky::util
