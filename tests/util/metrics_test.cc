#include "util/metrics.h"

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace nsky::util::metrics {
namespace {

// The registry is process-global, so every test uses its own metric names.

TEST(Metrics, CounterRegisterIncrementSnapshot) {
  Counter& c = GetCounter("test.m1.counter");
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  Snapshot snap = Snap();
  EXPECT_EQ(snap.CounterValue("test.m1.counter"), 42u);
  EXPECT_EQ(snap.CounterValue("test.m1.never_registered"), 0u);
}

TEST(Metrics, DuplicateNameReturnsSameCounter) {
  Counter& a = GetCounter("test.m2.dup");
  Counter& b = GetCounter("test.m2.dup");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5u);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistration) {
  Counter& c = GetCounter("test.m3.counter");
  Gauge& g = GetGauge("test.m3.gauge");
  c.Add(7);
  g.Set(-3);
  Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  // Same object is still live and usable after Reset.
  c.Add(2);
  EXPECT_EQ(GetCounter("test.m3.counter").Value(), 2u);
}

TEST(Metrics, DisabledMutationsAreNoOps) {
  Counter& c = GetCounter("test.m4.counter");
  Gauge& g = GetGauge("test.m4.gauge");
  Histogram& h = GetHistogram("test.m4.hist");
  SetEnabled(false);
  c.Add(10);
  g.Set(10);
  h.Observe(10);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Histogram& h = GetHistogram("test.m5.hist");
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1030u);
  EXPECT_EQ(h.Max(), 1024u);
  // Bucket index is the bit width of the value: bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(h.BucketCount(0), 1u);   // value 0
  EXPECT_EQ(h.BucketCount(1), 1u);   // value 1
  EXPECT_EQ(h.BucketCount(2), 2u);   // values 2 and 3
  EXPECT_EQ(h.BucketCount(11), 1u);  // 1024 <= v < 2048
}

TEST(Metrics, CounterMacroIncrements) {
  uint64_t before = GetCounter("test.m6.macro").Value();
  for (int i = 0; i < 3; ++i) NSKY_COUNTER_INC("test.m6.macro");
  NSKY_COUNTER_ADD("test.m6.macro", 4);
  EXPECT_EQ(GetCounter("test.m6.macro").Value(), before + 7);
}

TEST(Metrics, SampleCounterValuesMatchesRegistrationOrder) {
  Counter& c = GetCounter("test.m7.sampled");
  c.Add(9);
  std::vector<uint64_t> values;
  SampleCounterValues(&values);
  ASSERT_EQ(values.size(), NumCounters());
  bool found = false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (CounterName(i) == "test.m7.sampled") {
      EXPECT_EQ(values[i], 9u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotIsSortedAndRendersAsJson) {
  GetCounter("test.m8.b").Add(2);
  GetCounter("test.m8.a").Add(1);
  GetGauge("test.m8.gauge").Set(5);
  GetHistogram("test.m8.hist").Observe(3);
  Snapshot snap = Snap();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  std::string json = SnapshotToJson(snap);
  std::string error;
  auto v = JsonParse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  const JsonValue* counters = v->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("test.m8.a"), nullptr);
  EXPECT_EQ(counters->Find("test.m8.a")->number, 1);
  const JsonValue* hist = v->Find("histograms")->Find("test.m8.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 1);
  EXPECT_EQ(hist->Find("sum")->number, 3);
}

}  // namespace
}  // namespace nsky::util::metrics
