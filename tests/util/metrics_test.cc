#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/json_writer.h"

namespace nsky::util::metrics {
namespace {

// The registry is process-global, so every test uses its own metric names.

TEST(Metrics, CounterRegisterIncrementSnapshot) {
  Counter& c = GetCounter("test.m1.counter");
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  Snapshot snap = Snap();
  EXPECT_EQ(snap.CounterValue("test.m1.counter"), 42u);
  EXPECT_EQ(snap.CounterValue("test.m1.never_registered"), 0u);
}

TEST(Metrics, DuplicateNameReturnsSameCounter) {
  Counter& a = GetCounter("test.m2.dup");
  Counter& b = GetCounter("test.m2.dup");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5u);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistration) {
  Counter& c = GetCounter("test.m3.counter");
  Gauge& g = GetGauge("test.m3.gauge");
  c.Add(7);
  g.Set(-3);
  Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  // Same object is still live and usable after Reset.
  c.Add(2);
  EXPECT_EQ(GetCounter("test.m3.counter").Value(), 2u);
}

TEST(Metrics, DisabledMutationsAreNoOps) {
  Counter& c = GetCounter("test.m4.counter");
  Gauge& g = GetGauge("test.m4.gauge");
  Histogram& h = GetHistogram("test.m4.hist");
  SetEnabled(false);
  c.Add(10);
  g.Set(10);
  h.Observe(10);
  SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Histogram& h = GetHistogram("test.m5.hist");
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1030u);
  EXPECT_EQ(h.Max(), 1024u);
  // Bucket index is the bit width of the value: bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(h.BucketCount(0), 1u);   // value 0
  EXPECT_EQ(h.BucketCount(1), 1u);   // value 1
  EXPECT_EQ(h.BucketCount(2), 2u);   // values 2 and 3
  EXPECT_EQ(h.BucketCount(11), 1u);  // 1024 <= v < 2048
}

TEST(Metrics, CounterMacroIncrements) {
  uint64_t before = GetCounter("test.m6.macro").Value();
  for (int i = 0; i < 3; ++i) NSKY_COUNTER_INC("test.m6.macro");
  NSKY_COUNTER_ADD("test.m6.macro", 4);
  EXPECT_EQ(GetCounter("test.m6.macro").Value(), before + 7);
}

TEST(Metrics, SampleCounterValuesMatchesRegistrationOrder) {
  Counter& c = GetCounter("test.m7.sampled");
  c.Add(9);
  std::vector<uint64_t> values;
  SampleCounterValues(&values);
  ASSERT_EQ(values.size(), NumCounters());
  bool found = false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (CounterName(i) == "test.m7.sampled") {
      EXPECT_EQ(values[i], 9u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotIsSortedAndRendersAsJson) {
  GetCounter("test.m8.b").Add(2);
  GetCounter("test.m8.a").Add(1);
  GetGauge("test.m8.gauge").Set(5);
  GetHistogram("test.m8.hist").Observe(3);
  Snapshot snap = Snap();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  std::string json = SnapshotToJson(snap);
  std::string error;
  auto v = JsonParse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  const JsonValue* counters = v->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("test.m8.a"), nullptr);
  EXPECT_EQ(counters->Find("test.m8.a")->number, 1);
  const JsonValue* hist = v->Find("histograms")->Find("test.m8.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number, 1);
  EXPECT_EQ(hist->Find("sum")->number, 3);
}

// Max tracking uses a CAS loop, so concurrent observers must never lose the
// true maximum -- a plain relaxed store would let a smaller late writer
// overwrite a larger earlier one. Each thread observes an increasing ramp
// with a distinct per-thread peak; the histogram max must be the global
// peak, exactly.
TEST(Metrics, HistogramConcurrentObserveKeepsTrueMax) {
  Histogram& h = GetHistogram("test.m9.mt_max");
  constexpr int kThreads = 8;
  constexpr uint64_t kObservationsPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load()) {
      }
      // Thread t's peak is 1'000'000 + t; thread kThreads-1 owns the max.
      for (uint64_t i = 0; i < kObservationsPerThread; ++i) h.Observe(i);
      h.Observe(1000000 + static_cast<uint64_t>(t));
    });
  }
  go.store(true);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.Max(), 1000000u + kThreads - 1);
  EXPECT_EQ(h.Count(), kThreads * (kObservationsPerThread + 1));
}

TEST(Metrics, EstimateQuantileEmptyAndSingle) {
  HistogramSample empty;
  empty.count = 0;
  EXPECT_EQ(EstimateQuantile(empty, 0.5), 0.0);

  Histogram& h = GetHistogram("test.m10.single");
  h.Observe(100);
  HistogramSample s = h.Sample();
  // One sample: every quantile is clamped to the observed max.
  EXPECT_EQ(EstimateQuantile(s, 0.0), 100.0);
  EXPECT_EQ(EstimateQuantile(s, 0.5), 100.0);
  EXPECT_EQ(EstimateQuantile(s, 1.0), 100.0);
}

TEST(Metrics, EstimateQuantileInterpolatesWithinBucket) {
  Histogram& h = GetHistogram("test.m11.interp");
  // 100 samples uniform in bucket 10 ([512, 1024)).
  for (int i = 0; i < 100; ++i) h.Observe(512 + i * 5);
  HistogramSample s = h.Sample();
  double p50 = EstimateQuantile(s, 0.5);
  double p99 = EstimateQuantile(s, 0.99);
  // Estimates stay inside the bucket, are ordered, and the error bound is
  // one bucket width.
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, static_cast<double>(s.max));
}

TEST(Metrics, EstimateQuantileSpansBuckets) {
  Histogram& h = GetHistogram("test.m12.span");
  // 90 small values, 10 large ones: p50 must sit with the small mass, p99
  // with the large.
  for (int i = 0; i < 90; ++i) h.Observe(4);
  for (int i = 0; i < 10; ++i) h.Observe(5000);
  HistogramSample s = h.Sample();
  EXPECT_LE(EstimateQuantile(s, 0.5), 8.0);
  EXPECT_GE(EstimateQuantile(s, 0.95), 4096.0);
  EXPECT_EQ(EstimateQuantile(s, 1.0), 5000.0);
}

TEST(Metrics, SnapshotJsonIncludesQuantiles) {
  Histogram& h = GetHistogram("test.m13.quant");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<uint64_t>(i));
  std::string json = SnapshotToJson(Snap());
  auto v = JsonParse(json);
  ASSERT_TRUE(v.has_value());
  const JsonValue* hist = v->Find("histograms")->Find("test.m13.quant");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("p50"), nullptr);
  ASSERT_NE(hist->Find("p90"), nullptr);
  ASSERT_NE(hist->Find("p99"), nullptr);
  EXPECT_LE(hist->Find("p50")->number, hist->Find("p90")->number);
  EXPECT_LE(hist->Find("p90")->number, hist->Find("p99")->number);
  EXPECT_LE(hist->Find("p99")->number, 100.0);
}

// Metric names pass through JsonEscape on the way into SnapshotToJson, so a
// hostile name (quotes, backslashes, control characters) must yield a
// parseable document with the name intact.
TEST(Metrics, SnapshotJsonEscapesMetricNames) {
  const std::string name = "test.m14.\"quoted\\name\"\twith\ncontrol";
  GetCounter(name).Add(3);
  std::string json = SnapshotToJson(Snap());
  std::string error;
  auto v = JsonParse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  const JsonValue* counters = v->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find(name), nullptr);
  EXPECT_EQ(counters->Find(name)->number, 3);
}

// Reset() racing Snap() and writers must never tear: every snapshot is
// parseable and every sampled value is one the program could have produced
// (between 0 and the writer's final total).
TEST(Metrics, ResetVersusConcurrentSnapIsConsistent) {
  Counter& c = GetCounter("test.m15.race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) c.Add(1);
  });
  std::thread resetter([&] {
    for (int i = 0; i < 50; ++i) Reset();
  });
  for (int i = 0; i < 200; ++i) {
    Snapshot snap = Snap();
    uint64_t v = snap.CounterValue("test.m15.race");
    EXPECT_LT(v, 1u << 30);  // sane: no torn/garbage read
    std::string json = SnapshotToJson(snap);
    EXPECT_TRUE(JsonParse(json).has_value());
  }
  stop.store(true);
  writer.join();
  resetter.join();
}

}  // namespace
}  // namespace nsky::util::metrics
