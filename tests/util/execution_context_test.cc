#include "util/execution_context.h"

#include <chrono>

#include <gtest/gtest.h>

namespace nsky::util {
namespace {

TEST(ExecutionContext, DefaultIsUnlimited) {
  ExecutionContext ctx;
  EXPECT_TRUE(ctx.unlimited());
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.has_byte_budget());
  EXPECT_TRUE(ctx.CheckHealth().ok());
  EXPECT_TRUE(ctx.CheckBudget(~uint64_t{0} - 1).ok());
  EXPECT_FALSE(ctx.WouldExceedBudget(1u << 30, 1u << 30));
}

TEST(ExecutionContext, UnlimitedFactoryMatchesDefault) {
  EXPECT_TRUE(ExecutionContext::Unlimited().unlimited());
}

TEST(ExecutionContext, CancelTokenTripsCheckHealth) {
  CancelToken token;
  ExecutionContext ctx;
  ctx.set_cancel_token(&token);
  EXPECT_FALSE(ctx.unlimited());
  EXPECT_TRUE(ctx.CheckHealth().ok());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  Status s = ctx.CheckHealth();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(ExecutionContext, ExpiredDeadlineTripsCheckHealth) {
  ExecutionContext ctx;
  ctx.set_deadline(ExecutionContext::Clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.has_deadline());
  Status s = ctx.CheckHealth();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecutionContext, FutureDeadlinePasses) {
  ExecutionContext ctx;
  ctx.set_timeout_ms(60000);
  EXPECT_TRUE(ctx.CheckHealth().ok());
}

TEST(ExecutionContext, CancellationWinsOverDeadline) {
  CancelToken token;
  token.Cancel();
  ExecutionContext ctx;
  ctx.set_cancel_token(&token)
      .set_deadline(ExecutionContext::Clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.CheckHealth().code(), StatusCode::kCancelled);
}

TEST(ExecutionContext, ByteBudgetTripsCheckBudget) {
  ExecutionContext ctx;
  ctx.set_byte_budget(1024);
  EXPECT_TRUE(ctx.has_byte_budget());
  EXPECT_EQ(ctx.byte_budget(), 1024u);
  EXPECT_TRUE(ctx.CheckBudget(1024).ok());  // at the budget is fine
  Status s = ctx.CheckBudget(1025);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionContext, WouldExceedBudgetIsPredictive) {
  ExecutionContext ctx;
  ctx.set_byte_budget(1000);
  EXPECT_FALSE(ctx.WouldExceedBudget(400, 600));
  EXPECT_TRUE(ctx.WouldExceedBudget(400, 601));
}

TEST(ExecutionContext, SettersChain) {
  CancelToken token;
  ExecutionContext ctx = ExecutionContext()
                             .set_cancel_token(&token)
                             .set_timeout_ms(60000)
                             .set_byte_budget(1 << 20);
  EXPECT_FALSE(ctx.unlimited());
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.has_byte_budget());
  EXPECT_TRUE(ctx.CheckHealth().ok());
}

}  // namespace
}  // namespace nsky::util
