#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include "util/execution_context.h"

namespace nsky::util {
namespace {

// Every test disarms on entry and exit so suites can run in any order and
// an aborted test cannot leak an armed site into its neighbors.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Disarm(); }
  void TearDown() override { FaultInjector::Disarm(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));
  EXPECT_EQ(FaultInjector::DelayMs("pool.chunk_delay_ms"), 0u);
}

TEST_F(FaultInjectionTest, ArmedSiteFailsFromThresholdOn) {
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=3"));
  EXPECT_TRUE(FaultInjector::Enabled());
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));  // hit 1
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));  // hit 2
  EXPECT_TRUE(FaultInjector::ShouldFail("io.short_read"));   // hit 3 fires
  EXPECT_TRUE(FaultInjector::ShouldFail("io.short_read"));   // and stays fired
}

TEST_F(FaultInjectionTest, UnarmedSiteNeverFails) {
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=1"));
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_write"));
}

TEST_F(FaultInjectionTest, RearmingResetsHitCounters) {
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=2"));
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=2"));
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));  // counter is fresh
  EXPECT_TRUE(FaultInjector::ShouldFail("io.short_read"));
}

TEST_F(FaultInjectionTest, MultiSiteSpecParses) {
  ASSERT_TRUE(
      FaultInjector::ArmForTest("io.short_read=1, pool.chunk_delay_ms=7"));
  EXPECT_TRUE(FaultInjector::ShouldFail("io.short_read"));
  EXPECT_EQ(FaultInjector::DelayMs("pool.chunk_delay_ms"), 7u);
}

TEST_F(FaultInjectionTest, MalformedSpecDisarms) {
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=1"));
  EXPECT_FALSE(FaultInjector::ArmForTest("io.short_read"));       // no '='
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_FALSE(FaultInjector::ArmForTest("io.short_read=zero"));  // bad value
  EXPECT_FALSE(FaultInjector::ArmForTest("io.short_read=0"));     // zero value
  EXPECT_FALSE(FaultInjector::ArmForTest("=3"));                  // empty site
  EXPECT_FALSE(FaultInjector::Enabled());
}

TEST_F(FaultInjectionTest, DisarmClearsEverything) {
  ASSERT_TRUE(FaultInjector::ArmForTest("io.short_read=1"));
  FaultInjector::Disarm();
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_FALSE(FaultInjector::ShouldFail("io.short_read"));
}

TEST_F(FaultInjectionTest, BudgetSiteTripsOnlyBudgetedContexts) {
  ASSERT_TRUE(FaultInjector::ArmForTest("ctx.budget=1"));
  ExecutionContext unlimited;
  // The infallible Solve() path runs with an unlimited context; the fault
  // site must not reach it.
  EXPECT_TRUE(unlimited.CheckBudget(0).ok());
  ExecutionContext budgeted;
  budgeted.set_byte_budget(1u << 30);
  Status s = budgeted.CheckBudget(0);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace nsky::util
