#include "util/prom_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace nsky::util::metrics {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Minimal exposition-format lint: every line is `# TYPE name kind`, or
// `name value`, or `name{labels} value`, with names in the required
// charset. Mirrors the awk lint in scripts/check.sh --observability.
bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!ok_first(name[0])) return false;
  for (char c : name) {
    if (!ok_first(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

void LintExposition(const std::string& text) {
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string name, kind, extra;
      in >> name >> kind;
      EXPECT_TRUE(ValidName(name)) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      EXPECT_FALSE(in >> extra) << line;
      continue;
    }
    ASSERT_NE(line.rfind("#", 0), 0u) << "unexpected comment: " << line;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    size_t brace = series.find('{');
    std::string name =
        brace == std::string::npos ? series : series.substr(0, brace);
    EXPECT_TRUE(ValidName(name)) << line;
    if (brace != std::string::npos) {
      EXPECT_EQ(series.back(), '}') << line;
    }
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
  }
}

TEST(PromExport, SanitizesNames) {
  EXPECT_EQ(PrometheusName("nsky.engine.queries"), "nsky_engine_queries");
  EXPECT_EQ(PrometheusName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(PrometheusName("9starts.with-digit"), "_starts_with_digit");
  EXPECT_EQ(PrometheusName(""), "_");
  EXPECT_EQ(PrometheusName("sp ace\"quote"), "sp_ace_quote");
}

TEST(PromExport, RendersCountersGaugesHistograms) {
  GetCounter("test.prom.counter").Add(7);
  GetGauge("test.prom.gauge").Set(-3);
  Histogram& h = GetHistogram("test.prom.hist");
  h.Observe(0);
  h.Observe(3);
  h.Observe(900);

  std::string text = SnapshotToPrometheus(Snap());
  LintExposition(text);
  EXPECT_NE(text.find("# TYPE test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram\n"),
            std::string::npos);
  // Cumulative buckets: value 0 -> le="0" count 1; 3 -> le="3" cumulative 2;
  // 900 (bucket 10) -> le="1023" cumulative 3; then +Inf and _sum/_count.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1023\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum 903\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 3\n"), std::string::npos);
}

TEST(PromExport, HistogramLabelsMergeWithBucketBounds) {
  Histogram h("standalone");
  h.Observe(5);
  h.Observe(6);
  std::string out;
  AppendPrometheusHistogram("latency_us", "algo=\"cset\"", h.Sample(), &out);
  LintExposition(out);
  EXPECT_NE(out.find("latency_us_bucket{algo=\"cset\",le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("latency_us_bucket{algo=\"cset\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("latency_us_sum{algo=\"cset\"} 11\n"),
            std::string::npos);
  EXPECT_NE(out.find("latency_us_count{algo=\"cset\"} 2\n"),
            std::string::npos);
}

TEST(PromExport, BucketCountsAreCumulativeAndMonotone) {
  Histogram h("mono");
  for (uint64_t v = 1; v <= 4096; v *= 2) h.Observe(v);
  std::string out;
  AppendPrometheusHistogram("mono_us", "", h.Sample(), &out);
  LintExposition(out);
  uint64_t last = 0;
  for (const std::string& line : Lines(out)) {
    size_t le = line.find("le=\"");
    if (le == std::string::npos) continue;
    uint64_t count = std::strtoull(
        line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    EXPECT_GE(count, last) << line;
    last = count;
  }
  EXPECT_EQ(last, h.Count());
}

}  // namespace
}  // namespace nsky::util::metrics
