#include "util/trace.h"

#include <chrono>
#include <cstdio>

#include <gtest/gtest.h>

#include "util/json_writer.h"
#include "util/metrics.h"

namespace nsky::util::trace {
namespace {

// Tracing state is process-global; each test starts from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Reset();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

void SpinFor(std::chrono::microseconds d) {
  auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST_F(TraceTest, DisabledSpansCollectNothing) {
  SetEnabled(false);
  {
    NSKY_TRACE_SPAN("ghost");
  }
  EXPECT_TRUE(FinishedRoots().empty());
}

TEST_F(TraceTest, NestingBuildsTree) {
  {
    NSKY_TRACE_SPAN("root");
    {
      NSKY_TRACE_SPAN("child_a");
      { NSKY_TRACE_SPAN("grandchild"); }
    }
    { NSKY_TRACE_SPAN("child_b"); }
  }
  std::vector<SpanNode> roots = FinishedRoots();
  ASSERT_EQ(roots.size(), 1u);
  const SpanNode& root = roots[0];
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "child_a");
  EXPECT_EQ(root.children[1].name, "child_b");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "grandchild");
}

TEST_F(TraceTest, SelfTimeExcludesChildren) {
  {
    NSKY_TRACE_SPAN("parent");
    {
      NSKY_TRACE_SPAN("child");
      SpinFor(std::chrono::microseconds(2000));
    }
  }
  std::vector<SpanNode> roots = FinishedRoots();
  ASSERT_EQ(roots.size(), 1u);
  const SpanNode& parent = roots[0];
  ASSERT_EQ(parent.children.size(), 1u);
  const SpanNode& child = parent.children[0];
  EXPECT_GE(child.dur_us, 1900.0);
  // Parent wall time covers the child; parent self time does not.
  EXPECT_GE(parent.dur_us, child.dur_us);
  EXPECT_NEAR(parent.self_us, parent.dur_us - child.dur_us, 1.0);
  EXPECT_LT(parent.self_us, 1000.0);
  // Start offsets are non-decreasing down the tree.
  EXPECT_LE(parent.start_us, child.start_us);
}

TEST_F(TraceTest, SpansCaptureCounterDeltas) {
  metrics::Counter& c = metrics::GetCounter("test.trace.counter");
  {
    NSKY_TRACE_SPAN("outer");
    c.Add(3);
    {
      NSKY_TRACE_SPAN("inner");
      c.Add(4);
    }
  }
  std::vector<SpanNode> roots = FinishedRoots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].CounterDelta("test.trace.counter"), 7u);
  ASSERT_EQ(roots[0].children.size(), 1u);
  EXPECT_EQ(roots[0].children[0].CounterDelta("test.trace.counter"), 4u);
  EXPECT_EQ(roots[0].CounterDelta("test.trace.absent"), 0u);
}

TEST_F(TraceTest, ResetDropsOpenSpans) {
  {
    NSKY_TRACE_SPAN("doomed");
    Reset();
  }
  EXPECT_TRUE(FinishedRoots().empty());
  // New spans after the reset are collected normally.
  { NSKY_TRACE_SPAN("alive"); }
  ASSERT_EQ(FinishedRoots().size(), 1u);
  EXPECT_EQ(FinishedRoots()[0].name, "alive");
}

TEST_F(TraceTest, ChromeTraceJsonIsValid) {
  {
    NSKY_TRACE_SPAN("filter");
    { NSKY_TRACE_SPAN("refine"); }
  }
  { NSKY_TRACE_SPAN("second_root"); }
  std::string json = ToChromeTraceJson();
  std::string error;
  auto v = JsonParse(json, &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->array.size(), 3u);  // filter, refine, second_root
  for (const JsonValue& event : v->array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    EXPECT_EQ(event.Find("ph")->str, "X");
    ASSERT_NE(event.Find("ts"), nullptr);
    EXPECT_TRUE(event.Find("ts")->is_number());
    ASSERT_NE(event.Find("dur"), nullptr);
    EXPECT_TRUE(event.Find("dur")->is_number());
    EXPECT_NE(event.Find("pid"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
  EXPECT_EQ(v->array[0].Find("name")->str, "filter");
}

TEST_F(TraceTest, WriteChromeTraceCreatesLoadableFile) {
  { NSKY_TRACE_SPAN("io_span"); }
  std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto v = JsonParse(content);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_array());
}

TEST_F(TraceTest, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(WriteChromeTrace("/no/such/dir/trace.json").ok());
}

}  // namespace
}  // namespace nsky::util::trace
