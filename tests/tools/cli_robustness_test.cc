// CLI surface of the hardened runtime: --timeout-ms / --max-memory-mb /
// --strict-io flags, the distinct failure exit codes, and the stable
// nsky.error.v1 JSON emitted on --json failures.
#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault_injection.h"

namespace nsky::tools {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string WriteTempFile(const std::string& name, const std::string& text) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path);
  f << text;
  return path;
}

class CliRobustness : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Disarm(); }
  void TearDown() override { util::FaultInjector::Disarm(); }
};

TEST_F(CliRobustness, GenerousLimitsSucceed) {
  CliRun r = RunTool({"skyline", "--generate", "ba:200:3:7", "--timeout-ms",
                      "600000", "--max-memory-mb", "4096"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find(" of 200 vertices"), std::string::npos);
}

TEST_F(CliRobustness, TimeoutExitsWithCode4) {
  // The chunk-delay fault guarantees the solve cannot finish within 1ms.
  ASSERT_TRUE(util::FaultInjector::ArmForTest("pool.chunk_delay_ms=5"));
  CliRun r = RunTool(
      {"skyline", "--generate", "ba:5000:3:7", "--timeout-ms", "1"});
  EXPECT_EQ(r.exit_code, 4) << r.err;
  EXPECT_NE(r.err.find("DEADLINE_EXCEEDED"), std::string::npos) << r.err;
  EXPECT_EQ(r.out.find("skyline"), std::string::npos);  // no partial output
}

TEST_F(CliRobustness, TimeoutWithJsonEmitsErrorSchema) {
  ASSERT_TRUE(util::FaultInjector::ArmForTest("pool.chunk_delay_ms=5"));
  CliRun r = RunTool({"skyline", "--generate", "ba:5000:3:7", "--timeout-ms",
                      "1", "--json"});
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.out.find("\"schema\":\"nsky.error.v1\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"command\":\"skyline\""), std::string::npos);
  EXPECT_NE(r.out.find("\"code\":\"DEADLINE_EXCEEDED\""), std::string::npos);
  EXPECT_NE(r.out.find("\"exit_code\":4"), std::string::npos);
  // The error document replaces, not accompanies, the result document.
  EXPECT_EQ(r.out.find("nsky.skyline.v1"), std::string::npos);
}

TEST_F(CliRobustness, MemoryBudgetExitsWithCode6) {
  // The budget fault site trips the first CheckBudget of any budgeted run,
  // independent of graph size.
  ASSERT_TRUE(util::FaultInjector::ArmForTest("ctx.budget=1"));
  CliRun r = RunTool({"skyline", "--generate", "ba:5000:3:7", "--algo", "base",
                      "--max-memory-mb", "1024"});
  EXPECT_EQ(r.exit_code, 6) << r.err;
  EXPECT_NE(r.err.find("RESOURCE_EXHAUSTED"), std::string::npos) << r.err;
}

TEST_F(CliRobustness, MemoryBudgetJsonErrorSchema) {
  ASSERT_TRUE(util::FaultInjector::ArmForTest("ctx.budget=1"));
  CliRun r = RunTool({"candidates", "--generate", "ba:2000:3:7",
                      "--max-memory-mb", "1024", "--json"});
  EXPECT_EQ(r.exit_code, 6);
  EXPECT_NE(r.out.find("\"schema\":\"nsky.error.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"command\":\"candidates\""), std::string::npos);
  EXPECT_NE(r.out.find("\"code\":\"RESOURCE_EXHAUSTED\""), std::string::npos);
  EXPECT_NE(r.out.find("\"exit_code\":6"), std::string::npos);
}

TEST_F(CliRobustness, TwoHopDegradesUnderBudgetAndStaysExact) {
  // A modest budget forces 2hop onto the filter-refine path; the JSON
  // records where the run degraded from and the skyline is unchanged.
  CliRun full = RunTool({"skyline", "--generate", "ba:3000:4:7", "--algo",
                         "filter-refine", "--json"});
  ASSERT_EQ(full.exit_code, 0);
  CliRun r = RunTool({"skyline", "--generate", "ba:3000:4:7", "--algo", "2hop",
                      "--max-memory-mb", "1", "--json"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"degraded_from\":\"2hop\""), std::string::npos)
      << r.out;
  // Same members array as the native filter-refine run.
  auto members = [](const std::string& json) {
    size_t b = json.find("\"members\":");
    size_t e = json.find(']', b);
    return json.substr(b, e - b);
  };
  EXPECT_EQ(members(r.out), members(full.out));
}

TEST_F(CliRobustness, BadLimitValuesAreUsageErrors) {
  for (auto args : std::vector<std::vector<std::string>>{
           {"skyline", "--generate", "cycle:10", "--timeout-ms", "abc"},
           {"skyline", "--generate", "cycle:10", "--timeout-ms", "-5"},
           {"skyline", "--generate", "cycle:10", "--max-memory-mb", "x"},
           {"skyline", "--generate", "cycle:10", "--max-memory-mb", "0"}}) {
    CliRun r = RunTool(args);
    EXPECT_EQ(r.exit_code, 2) << args[3] << "=" << args[4];
    EXPECT_NE(r.err.find("error:"), std::string::npos);
  }
}

TEST_F(CliRobustness, JoinRejectsLimits) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:10", "--algo", "join",
                      "--timeout-ms", "1000"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("not supported"), std::string::npos);
}

TEST_F(CliRobustness, StrictIoRejectsMalformedFileByDefault) {
  std::string path =
      WriteTempFile("nsky_cli_bad.txt", "0 1\n1 garbage\n1 2\n");
  CliRun r = RunTool({"stats", "--input", path});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("line 2"), std::string::npos) << r.err;
  std::remove(path.c_str());
}

TEST_F(CliRobustness, PermissiveIoSkipsAndReports) {
  std::string path =
      WriteTempFile("nsky_cli_bad2.txt", "0 1\n1 garbage\n1 2\n");
  CliRun r = RunTool({"stats", "--input", path, "--strict-io", "no"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("n=3"), std::string::npos);
  EXPECT_NE(r.err.find("skipped 1 malformed line"), std::string::npos)
      << r.err;
  std::remove(path.c_str());
}

TEST_F(CliRobustness, BadStrictIoValueIsUsageError) {
  CliRun r = RunTool(
      {"stats", "--generate", "cycle:5", "--strict-io", "maybe"});
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliRobustness, ShortReadFaultIsRuntimeError) {
  ASSERT_TRUE(util::FaultInjector::ArmForTest("io.short_read=2"));
  std::string path = WriteTempFile("nsky_cli_sr.txt", "0 1\n1 2\n2 3\n");
  CliRun r = RunTool({"stats", "--input", path});
  EXPECT_EQ(r.exit_code, 2);  // load failures are reported as usage-stage
  EXPECT_NE(r.err.find("short read"), std::string::npos) << r.err;
  std::remove(path.c_str());
}

TEST_F(CliRobustness, SuccessJsonCarriesDegradedFromField) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:10", "--json"});
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\"degraded_from\":\"\""), std::string::npos) << r.out;
}

}  // namespace
}  // namespace nsky::tools
