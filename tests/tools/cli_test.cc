#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace nsky::tools {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoCommandFails) {
  CliRun r = RunTool({});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliRun r = RunTool({"frobnicate"});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  CliRun r = RunTool({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

TEST(Cli, DatasetsListsRegistry) {
  CliRun r = RunTool({"datasets"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("wikitalk"), std::string::npos);
  EXPECT_NE(r.out.find("dblp"), std::string::npos);
}

TEST(Cli, StatsOnGeneratedGraph) {
  CliRun r = RunTool({"stats", "--generate", "cycle:10"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("n=10"), std::string::npos);
  EXPECT_NE(r.out.find("m=10"), std::string::npos);
}

TEST(Cli, RequiresExactlyOneSource) {
  CliRun none = RunTool({"stats"});
  EXPECT_NE(none.exit_code, 0);
  CliRun both = RunTool({"stats", "--generate", "cycle:5", "--standin", "dblp"});
  EXPECT_NE(both.exit_code, 0);
}

TEST(Cli, SkylineOnClique) {
  CliRun r = RunTool({"skyline", "--generate", "clique:8"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("skyline 1 of 8"), std::string::npos);
}

TEST(Cli, SkylineAlgorithmsAgree) {
  for (const char* algo : {"base", "filter-refine", "cset", "2hop", "join"}) {
    CliRun r = RunTool({"skyline", "--generate", "ba:200:3:7", "--algorithm", algo});
    EXPECT_EQ(r.exit_code, 0) << algo;
    // All algorithms must report the same count on the same seeded graph.
    EXPECT_NE(r.out.find(" of 200 vertices"), std::string::npos) << algo;
  }
}

TEST(Cli, SkylineRejectsBadAlgorithm) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:5", "--algorithm", "magic"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, SkylinePrintsMembers) {
  CliRun r = RunTool({"skyline", "--generate", "star:5", "--print", "yes"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\n0\n"), std::string::npos);
}

TEST(Cli, CandidatesOnPath) {
  CliRun r = RunTool({"candidates", "--generate", "path:10"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("candidates 8 of 10"), std::string::npos);
}

TEST(Cli, GenerateWritesAndStatsReads) {
  std::string path = ::testing::TempDir() + "/cli_gen.txt";
  CliRun w = RunTool({"generate", "--generate", "er:100:0.05:3", "--output", path});
  EXPECT_EQ(w.exit_code, 0) << w.err;
  CliRun r = RunTool({"stats", "--input", path});
  EXPECT_EQ(r.exit_code, 0);
  std::remove(path.c_str());
}

TEST(Cli, GenerateWithoutOutputFails) {
  CliRun r = RunTool({"generate", "--generate", "cycle:5"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, InputFileMissingFails) {
  CliRun r = RunTool({"stats", "--input", "/no/such/file.txt"});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(Cli, CentralityTopList) {
  CliRun r = RunTool({"centrality", "--generate", "star:6", "--top", "1"});
  EXPECT_EQ(r.exit_code, 0);
  // The star center must top the list.
  EXPECT_NE(r.out.find("\n0 "), std::string::npos);
}

TEST(Cli, GroupMaxBothObjectives) {
  for (const char* obj : {"closeness", "harmonic"}) {
    CliRun r = RunTool({"group-max", "--generate", "ba:150:3:2", "--k", "3",
                    "--objective", obj});
    EXPECT_EQ(r.exit_code, 0) << obj << ": " << r.err;
    EXPECT_NE(r.out.find("score"), std::string::npos);
  }
}

TEST(Cli, GroupMaxPrunedAndUnprunedSameScore) {
  CliRun pruned = RunTool({"group-max", "--generate", "social:300:6:5", "--k", "3"});
  CliRun base = RunTool({"group-max", "--generate", "social:300:6:5", "--k", "3",
                     "--no-skyline-pruning"});
  ASSERT_EQ(pruned.exit_code, 0);
  ASSERT_EQ(base.exit_code, 0);
  auto score_of = [](const std::string& s) {
    size_t pos = s.find("score ");
    return s.substr(pos, s.find(',', pos) - pos);
  };
  EXPECT_EQ(score_of(pruned.out), score_of(base.out));
}

TEST(Cli, CliqueOnCaveman) {
  // caveman isn't a generator spec; use a clique, whose answer is known.
  CliRun r = RunTool({"clique", "--generate", "clique:7"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("maximum clique size 7"), std::string::npos);
}

TEST(Cli, TopkCliques) {
  CliRun r = RunTool({"topk-cliques", "--generate", "ba:120:4:9", "--k", "2"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("#1"), std::string::npos);
}

TEST(Cli, StandinSmallScale) {
  CliRun r = RunTool({"stats", "--standin", "dblp", "--scale", "small"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("n=4000"), std::string::npos);
}

TEST(Cli, BadGeneratorSpecFails) {
  CliRun r = RunTool({"stats", "--generate", "torus:5"});
  EXPECT_NE(r.exit_code, 0);
}

}  // namespace
}  // namespace nsky::tools
