#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace nsky::tools {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

CliRun RunTool(std::vector<std::string> args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoCommandFails) {
  CliRun r = RunTool({});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliRun r = RunTool({"frobnicate"});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  CliRun r = RunTool({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

TEST(Cli, DatasetsListsRegistry) {
  CliRun r = RunTool({"datasets"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("wikitalk"), std::string::npos);
  EXPECT_NE(r.out.find("dblp"), std::string::npos);
}

TEST(Cli, StatsOnGeneratedGraph) {
  CliRun r = RunTool({"stats", "--generate", "cycle:10"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("n=10"), std::string::npos);
  EXPECT_NE(r.out.find("m=10"), std::string::npos);
}

TEST(Cli, RequiresExactlyOneSource) {
  CliRun none = RunTool({"stats"});
  EXPECT_NE(none.exit_code, 0);
  CliRun both = RunTool({"stats", "--generate", "cycle:5", "--standin", "dblp"});
  EXPECT_NE(both.exit_code, 0);
}

TEST(Cli, SkylineOnClique) {
  CliRun r = RunTool({"skyline", "--generate", "clique:8"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("skyline 1 of 8"), std::string::npos);
}

TEST(Cli, SkylineAlgorithmsAgree) {
  for (const char* algo : {"base", "filter-refine", "cset", "2hop", "join"}) {
    CliRun r = RunTool({"skyline", "--generate", "ba:200:3:7", "--algorithm", algo});
    EXPECT_EQ(r.exit_code, 0) << algo;
    // All algorithms must report the same count on the same seeded graph.
    EXPECT_NE(r.out.find(" of 200 vertices"), std::string::npos) << algo;
  }
}

TEST(Cli, SkylineAlgoAliasAndThreads) {
  // --algo is the canonical flag; any --threads value gives the same count.
  CliRun base = RunTool({"skyline", "--generate", "ba:200:3:7"});
  ASSERT_EQ(base.exit_code, 0);
  for (const char* threads : {"1", "4", "8"}) {
    CliRun r = RunTool({"skyline", "--generate", "ba:200:3:7", "--algo",
                        "filter-refine", "--threads", threads});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("threads " + std::string(threads)),
              std::string::npos)
        << r.out;
    // "skyline N of 200" prefix identical to the sequential default run.
    EXPECT_EQ(r.out.substr(0, r.out.find("(")),
              base.out.substr(0, base.out.find("(")));
  }
}

TEST(Cli, SkylineRejectsBadThreads) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:5", "--threads", "-2"});
  EXPECT_NE(r.exit_code, 0);
  CliRun nan = RunTool({"skyline", "--generate", "cycle:5", "--threads", "x"});
  EXPECT_NE(nan.exit_code, 0);
}

TEST(Cli, CandidatesAcceptsThreads) {
  CliRun r = RunTool({"candidates", "--generate", "path:10", "--threads", "3"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("candidates 8 of 10"), std::string::npos);
}

TEST(Cli, SkylineRejectsBadAlgorithm) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:5", "--algorithm", "magic"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, SkylineEngineRepeatMatchesSingleSolve) {
  // --repeat serves all iterations from one engine (first cold, rest warm);
  // the printed result must match the plain one-shot run.
  CliRun cold = RunTool({"skyline", "--generate", "ba:300:3:7"});
  ASSERT_EQ(cold.exit_code, 0) << cold.err;
  for (auto warm_args : {std::vector<std::string>{"skyline", "--generate",
                                                  "ba:300:3:7", "--engine"},
                         std::vector<std::string>{"skyline", "--generate",
                                                  "ba:300:3:7", "--repeat",
                                                  "4"}}) {
    CliRun warm = RunTool(warm_args);
    EXPECT_EQ(warm.exit_code, 0) << warm.err;
    // "skyline N of 300" prefix identical to the one-shot run.
    EXPECT_EQ(warm.out.substr(0, warm.out.find("(")),
              cold.out.substr(0, cold.out.find("(")));
  }
}

TEST(Cli, SkylineEngineJsonCarriesAdditiveKeys) {
  CliRun r = RunTool({"skyline", "--generate", "ba:200:3:7", "--repeat", "3",
                      "--json"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"schema\":\"nsky.skyline.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"engine\":true"), std::string::npos);
  EXPECT_NE(r.out.find("\"repeat\":3"), std::string::npos);
  // Plain runs must not grow the schema.
  CliRun plain = RunTool({"skyline", "--generate", "ba:200:3:7", "--json"});
  EXPECT_EQ(plain.out.find("\"engine\""), std::string::npos);
}

TEST(Cli, SkylineRejectsBadRepeatAndJoinWithEngine) {
  CliRun zero =
      RunTool({"skyline", "--generate", "cycle:5", "--repeat", "0"});
  EXPECT_EQ(zero.exit_code, 2);
  CliRun nan =
      RunTool({"skyline", "--generate", "cycle:5", "--repeat", "x"});
  EXPECT_EQ(nan.exit_code, 2);
  CliRun join = RunTool(
      {"skyline", "--generate", "cycle:5", "--algo", "join", "--engine"});
  EXPECT_EQ(join.exit_code, 2);
  EXPECT_NE(join.err.find("--engine/--repeat"), std::string::npos);
}

TEST(Cli, SkylinePrintsMembers) {
  CliRun r = RunTool({"skyline", "--generate", "star:5", "--print", "yes"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("\n0\n"), std::string::npos);
}

TEST(Cli, CandidatesOnPath) {
  CliRun r = RunTool({"candidates", "--generate", "path:10"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("candidates 8 of 10"), std::string::npos);
}

TEST(Cli, GenerateWritesAndStatsReads) {
  std::string path = ::testing::TempDir() + "/cli_gen.txt";
  CliRun w = RunTool({"generate", "--generate", "er:100:0.05:3", "--output", path});
  EXPECT_EQ(w.exit_code, 0) << w.err;
  CliRun r = RunTool({"stats", "--input", path});
  EXPECT_EQ(r.exit_code, 0);
  std::remove(path.c_str());
}

TEST(Cli, GenerateWithoutOutputFails) {
  CliRun r = RunTool({"generate", "--generate", "cycle:5"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, InputFileMissingFails) {
  CliRun r = RunTool({"stats", "--input", "/no/such/file.txt"});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST(Cli, CentralityTopList) {
  CliRun r = RunTool({"centrality", "--generate", "star:6", "--top", "1"});
  EXPECT_EQ(r.exit_code, 0);
  // The star center must top the list.
  EXPECT_NE(r.out.find("\n0 "), std::string::npos);
}

TEST(Cli, GroupMaxBothObjectives) {
  for (const char* obj : {"closeness", "harmonic"}) {
    CliRun r = RunTool({"group-max", "--generate", "ba:150:3:2", "--k", "3",
                    "--objective", obj});
    EXPECT_EQ(r.exit_code, 0) << obj << ": " << r.err;
    EXPECT_NE(r.out.find("score"), std::string::npos);
  }
}

TEST(Cli, GroupMaxPrunedAndUnprunedSameScore) {
  CliRun pruned = RunTool({"group-max", "--generate", "social:300:6:5", "--k", "3"});
  CliRun base = RunTool({"group-max", "--generate", "social:300:6:5", "--k", "3",
                     "--no-skyline-pruning"});
  ASSERT_EQ(pruned.exit_code, 0);
  ASSERT_EQ(base.exit_code, 0);
  auto score_of = [](const std::string& s) {
    size_t pos = s.find("score ");
    return s.substr(pos, s.find(',', pos) - pos);
  };
  EXPECT_EQ(score_of(pruned.out), score_of(base.out));
}

TEST(Cli, CliqueOnCaveman) {
  // caveman isn't a generator spec; use a clique, whose answer is known.
  CliRun r = RunTool({"clique", "--generate", "clique:7"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("maximum clique size 7"), std::string::npos);
}

TEST(Cli, TopkCliques) {
  CliRun r = RunTool({"topk-cliques", "--generate", "ba:120:4:9", "--k", "2"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("#1"), std::string::npos);
}

TEST(Cli, StandinSmallScale) {
  CliRun r = RunTool({"stats", "--standin", "dblp", "--scale", "small"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("n=4000"), std::string::npos);
}

TEST(Cli, BadGeneratorSpecFails) {
  CliRun r = RunTool({"stats", "--generate", "torus:5"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, SkylineJsonMatchesTextModeAndSchema) {
  const std::vector<std::string> source = {"--generate", "er:2000:0.01:5"};
  CliRun text = RunTool({"skyline", source[0], source[1]});
  ASSERT_EQ(text.exit_code, 0);
  CliRun json = RunTool({"skyline", source[0], source[1], "--json"});
  ASSERT_EQ(json.exit_code, 0) << json.err;

  std::string error;
  auto v = nsky::util::JsonParse(json.out, &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("schema")->str, "nsky.skyline.v1");
  EXPECT_EQ(v->Find("command")->str, "skyline");
  EXPECT_EQ(v->Find("algorithm")->str, "filter-refine");
  EXPECT_EQ(v->Find("graph")->Find("n")->number, 2000);

  const nsky::util::JsonValue* skyline = v->Find("skyline");
  ASSERT_NE(skyline, nullptr);
  auto size = static_cast<uint64_t>(skyline->Find("size")->number);
  EXPECT_EQ(skyline->Find("members")->array.size(), size);

  // The documented stats fields all exist.
  const nsky::util::JsonValue* stats = v->Find("stats");
  ASSERT_NE(stats, nullptr);
  for (const char* field :
       {"candidate_count", "pairs_examined", "bloom_prunes", "degree_prunes",
        "inclusion_tests", "nbr_elements_scanned", "aux_peak_bytes",
        "threads", "seconds"}) {
    ASSERT_NE(stats->Find(field), nullptr) << field;
    EXPECT_TRUE(stats->Find(field)->is_number()) << field;
  }
  EXPECT_EQ(stats->Find("threads")->number, 1);

  // Same skyline count as the text rendering ("skyline N of 2000 ...").
  std::string expected = "skyline " + std::to_string(size) + " of 2000";
  EXPECT_NE(text.out.find(expected), std::string::npos) << text.out;
}

TEST(Cli, StatsAndCandidatesJson) {
  CliRun stats = RunTool({"stats", "--generate", "cycle:10", "--json"});
  ASSERT_EQ(stats.exit_code, 0);
  auto sv = nsky::util::JsonParse(stats.out);
  ASSERT_TRUE(sv.has_value());
  EXPECT_EQ(sv->Find("schema")->str, "nsky.stats.v1");
  EXPECT_EQ(sv->Find("graph")->Find("n")->number, 10);
  EXPECT_EQ(sv->Find("graph")->Find("m")->number, 10);

  CliRun cand = RunTool({"candidates", "--generate", "path:10", "--json"});
  ASSERT_EQ(cand.exit_code, 0);
  auto cv = nsky::util::JsonParse(cand.out);
  ASSERT_TRUE(cv.has_value());
  EXPECT_EQ(cv->Find("schema")->str, "nsky.candidates.v1");
  EXPECT_EQ(cv->Find("candidates")->Find("size")->number, 8);
}

TEST(Cli, SkylineJsonRecordsThreads) {
  CliRun r = RunTool({"skyline", "--generate", "er:500:0.02:3", "--algo",
                      "filter-refine", "--threads", "4", "--json"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  auto v = nsky::util::JsonParse(r.out);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("stats")->Find("threads")->number, 4);
}

TEST(Cli, JsonUnsupportedCommandFails) {
  CliRun r = RunTool({"clique", "--generate", "clique:5", "--json"});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("--json"), std::string::npos);
}

TEST(Cli, TraceWritesChromeTraceEvents) {
  std::string path = ::testing::TempDir() + "/cli_trace.json";
  CliRun r = RunTool(
      {"skyline", "--generate", "er:500:0.02:3", "--trace", path});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  std::remove(path.c_str());

  auto v = nsky::util::JsonParse(content.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_array());
  ASSERT_FALSE(v->array.empty());
  bool saw_filter = false, saw_refine = false;
  for (const auto& event : v->array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_EQ(event.Find("ph")->str, "X");
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
    saw_filter |= event.Find("name")->str == "filter";
    saw_refine |= event.Find("name")->str == "refine";
  }
  // The solver phase tree made it into the trace.
  EXPECT_TRUE(saw_filter);
  EXPECT_TRUE(saw_refine);
}

TEST(Cli, TraceBadPathFails) {
  CliRun r = RunTool({"stats", "--generate", "cycle:5", "--trace",
                      "/no/such/dir/t.json"});
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, MetricsVerbJsonAndProm) {
  CliRun json = RunTool({"metrics", "--format", "json"});
  EXPECT_EQ(json.exit_code, 0);
  std::string error;
  auto v = util::JsonParse(json.out, &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->Find("schema")->str, "nsky.metrics.v1");
  ASSERT_NE(v->Find("metrics"), nullptr);
  ASSERT_NE(v->Find("metrics")->Find("counters"), nullptr);

  CliRun prom = RunTool({"metrics", "--format", "prom"});
  EXPECT_EQ(prom.exit_code, 0);
  // Registry counters exist from earlier runs in this process; every line
  // of the output is exposition format (comments or samples).
  for (char c : prom.out) {
    EXPECT_TRUE(c == '\n' || (c >= 0x20 && c <= 0x7e)) << int(c);
  }

  CliRun bad = RunTool({"metrics", "--format", "xml"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.err.find("--format"), std::string::npos);
}

TEST(Cli, SkylineStatsEmbedsEngineDocuments) {
  CliRun r = RunTool({"skyline", "--generate", "ba:300:3:7", "--engine",
                      "--repeat", "3", "--stats", "--json"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  std::string error;
  auto v = util::JsonParse(r.out, &error);
  ASSERT_TRUE(v.has_value()) << error;
  const util::JsonValue* stats = v->Find("engine_stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("schema")->str, "nsky.engine_stats.v1");
  EXPECT_EQ(stats->Find("queries_served")->number, 3);
  EXPECT_EQ(stats->Find("warm_queries")->number, 2);
  EXPECT_EQ(stats->Find("cold_queries")->number, 1);
  const util::JsonValue* recent = v->Find("recent_queries");
  ASSERT_NE(recent, nullptr);
  EXPECT_EQ(recent->Find("schema")->str, "nsky.queries.v1");
  ASSERT_EQ(recent->Find("records")->array.size(), 3u);
  EXPECT_EQ(recent->Find("records")->array[0].Find("seq")->number, 1);
}

TEST(Cli, SkylineStatsTextMode) {
  CliRun r = RunTool({"skyline", "--generate", "ba:300:3:7", "--engine",
                      "--repeat", "2", "--stats"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("\"schema\":\"nsky.engine_stats.v1\""),
            std::string::npos);
  EXPECT_NE(r.out.find("\"schema\":\"nsky.queries.v1\""), std::string::npos);
}

TEST(Cli, SkylineStatsRequiresEngine) {
  CliRun r = RunTool({"skyline", "--generate", "ba:300:3:7", "--stats"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("--engine"), std::string::npos);
}

TEST(Cli, SkylineStatsRequiresEngineJsonBody) {
  // With --json the usage error is a structured nsky.error.v1 document, not
  // a bare stderr line, so scripted callers parse one schema everywhere.
  CliRun r = RunTool(
      {"skyline", "--generate", "ba:300:3:7", "--stats", "--json"});
  EXPECT_EQ(r.exit_code, 2);
  auto doc = util::JsonParse(r.out);
  ASSERT_TRUE(doc.has_value()) << r.out;
  ASSERT_NE(doc->Find("schema"), nullptr);
  EXPECT_EQ(doc->Find("schema")->str, "nsky.error.v1");
  EXPECT_EQ(doc->Find("code")->str, "INVALID_ARGUMENT");
  EXPECT_EQ(doc->Find("exit_code")->number, 2.0);
  EXPECT_NE(doc->Find("message")->str.find("--engine"), std::string::npos);
}

TEST(Cli, MetricsOutWritesPrometheusFile) {
  std::string path = ::testing::TempDir() + "nsky_cli_metrics_out.prom";
  std::remove(path.c_str());
  CliRun r = RunTool({"skyline", "--generate", "ba:300:3:7", "--engine",
                      "--repeat", "2", "--metrics-out", path});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  // Both the global registry and the engine-scoped stats are in the file.
  EXPECT_NE(content.str().find("# TYPE "), std::string::npos);
  EXPECT_NE(content.str().find("nsky_engine_queries_served 2\n"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, MetricsOutBadPathFails) {
  CliRun r = RunTool({"skyline", "--generate", "cycle:5", "--metrics-out",
                      "/no/such/dir/m.prom"});
  EXPECT_NE(r.exit_code, 0);
}

}  // namespace
}  // namespace nsky::tools
