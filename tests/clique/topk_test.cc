#include "clique/topk.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "clique/max_clique.h"
#include "graph/generators.h"

namespace nsky::clique {
namespace {

using graph::Graph;

void CheckDisjointCliques(const Graph& g, const TopkCliquesResult& r) {
  std::vector<graph::VertexId> used;
  for (const auto& clique : r.cliques) {
    EXPECT_TRUE(IsClique(g, clique));
    for (graph::VertexId v : clique) {
      EXPECT_TRUE(std::find(used.begin(), used.end(), v) == used.end())
          << "vertex " << v << " reused across cliques";
      used.push_back(v);
    }
  }
}

TEST(BaseTopkMCC, CavemanPicksTheCaves) {
  Graph g = graph::MakeCaveman(4, 6);
  TopkCliquesResult r = BaseTopkMCC(g, 4);
  ASSERT_EQ(r.cliques.size(), 4u);
  for (const auto& c : r.cliques) EXPECT_EQ(c.size(), 6u);
  CheckDisjointCliques(g, r);
}

TEST(BaseTopkMCC, SizesNonIncreasing) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(60, 0.2, seed);
    TopkCliquesResult r = BaseTopkMCC(g, 5);
    for (size_t i = 1; i < r.cliques.size(); ++i) {
      EXPECT_LE(r.cliques[i].size(), r.cliques[i - 1].size());
    }
    CheckDisjointCliques(g, r);
  }
}

TEST(BaseTopkMCC, FirstCliqueIsMaximum) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.3, seed);
    TopkCliquesResult r = BaseTopkMCC(g, 1);
    ASSERT_EQ(r.cliques.size(), 1u);
    EXPECT_EQ(r.cliques[0].size(), BruteForceMaxClique(g).size());
  }
}

TEST(NeiSkyTopkMCC, MatchesBaseSizes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(100, 2.4, 8, seed);
    TopkCliquesResult base = BaseTopkMCC(g, 4);
    TopkCliquesResult pruned = NeiSkyTopkMCC(g, 4);
    ASSERT_EQ(base.cliques.size(), pruned.cliques.size()) << "seed " << seed;
    for (size_t i = 0; i < base.cliques.size(); ++i) {
      EXPECT_EQ(base.cliques[i].size(), pruned.cliques[i].size())
          << "round " << i << " seed " << seed;
    }
    CheckDisjointCliques(g, pruned);
  }
}

TEST(NeiSkyTopkMCC, SkylineTimeAccounted) {
  Graph g = graph::MakeChungLuPowerLaw(200, 2.4, 7, 2);
  TopkCliquesResult r = NeiSkyTopkMCC(g, 3);
  EXPECT_GT(r.skyline_seconds, 0.0);
  EXPECT_GE(r.total_seconds, r.skyline_seconds);
}

TEST(TopkMCC, KLargerThanGraph) {
  Graph g = graph::MakeClique(5);
  TopkCliquesResult r = BaseTopkMCC(g, 10);
  // First round removes the whole clique; nothing remains.
  ASSERT_EQ(r.cliques.size(), 1u);
  EXPECT_EQ(r.cliques[0].size(), 5u);
}

TEST(TopkMCC, EdgelessGraphYieldsSingletons) {
  Graph g = Graph::FromEdges(3, {});
  TopkCliquesResult r = BaseTopkMCC(g, 3);
  ASSERT_EQ(r.cliques.size(), 3u);
  for (const auto& c : r.cliques) EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace nsky::clique
