#include "clique/max_clique.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace nsky::clique {
namespace {

using graph::Graph;

TEST(IsClique, Basics) {
  Graph g = graph::MakeClique(5);
  std::vector<graph::VertexId> all = {0, 1, 2, 3, 4};
  EXPECT_TRUE(IsClique(g, all));
  Graph path = graph::MakePath(4);
  std::vector<graph::VertexId> not_clique = {0, 1, 2};
  EXPECT_FALSE(IsClique(path, not_clique));
  EXPECT_TRUE(IsClique(path, std::vector<graph::VertexId>{1, 2}));
  EXPECT_TRUE(IsClique(path, std::vector<graph::VertexId>{3}));
  EXPECT_TRUE(IsClique(path, std::vector<graph::VertexId>{}));
}

TEST(BruteForceMaxClique, KnownGraphs) {
  EXPECT_EQ(BruteForceMaxClique(graph::MakeClique(6)).size(), 6u);
  EXPECT_EQ(BruteForceMaxClique(graph::MakeCycle(7)).size(), 2u);
  EXPECT_EQ(BruteForceMaxClique(graph::MakeCycle(3)).size(), 3u);
  EXPECT_EQ(BruteForceMaxClique(graph::MakeCompleteBinaryTree(3)).size(), 2u);
  EXPECT_EQ(BruteForceMaxClique(Graph::FromEdges(3, {})).size(), 1u);
  EXPECT_TRUE(BruteForceMaxClique(Graph::FromEdges(0, {})).empty());
}

TEST(HeuristicClique, ReturnsARealClique) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeErdosRenyi(60, 0.25, seed);
    auto h = HeuristicClique(g);
    EXPECT_FALSE(h.empty());
    EXPECT_TRUE(IsClique(g, h));
  }
}

TEST(HeuristicClique, FindsPlantedClique) {
  // Caveman graphs have their caves as maximum cliques.
  Graph g = graph::MakeCaveman(4, 6);
  auto h = HeuristicClique(g);
  EXPECT_EQ(h.size(), 6u);
}

TEST(MaxClique, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = graph::MakeErdosRenyi(35, 0.35, seed);
    CliqueResult r = MaxClique(g);
    EXPECT_TRUE(IsClique(g, r.clique));
    EXPECT_EQ(r.clique.size(), BruteForceMaxClique(g).size())
        << "seed " << seed;
  }
}

TEST(MaxClique, MatchesBruteForceOnPowerLaw) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(80, 2.3, 8, seed);
    CliqueResult r = MaxClique(g);
    EXPECT_TRUE(IsClique(g, r.clique));
    EXPECT_EQ(r.clique.size(), BruteForceMaxClique(g).size())
        << "seed " << seed;
  }
}

TEST(MaxClique, StructuredGraphs) {
  EXPECT_EQ(MaxClique(graph::MakeClique(10)).clique.size(), 10u);
  EXPECT_EQ(MaxClique(graph::MakeCycle(9)).clique.size(), 2u);
  EXPECT_EQ(MaxClique(graph::MakeCaveman(3, 7)).clique.size(), 7u);
  EXPECT_EQ(MaxClique(graph::MakeGrid(4, 4)).clique.size(), 2u);
  EXPECT_EQ(MaxClique(Graph::FromEdges(0, {})).clique.size(), 0u);
  EXPECT_EQ(MaxClique(Graph::FromEdges(5, {})).clique.size(), 1u);
}

TEST(MaxCliqueSeeded, AllSeedsMatchesMaxClique) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.3, seed);
    std::vector<graph::VertexId> all(g.NumVertices());
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) all[u] = u;
    CliqueResult seeded = MaxCliqueSeeded(g, all);
    EXPECT_EQ(seeded.clique.size(), MaxClique(g).clique.size())
        << "seed " << seed;
    EXPECT_TRUE(IsClique(g, seeded.clique));
  }
}

TEST(MaxCliqueSeeded, IncumbentReturnedWhenSeedsCannotBeat) {
  Graph g = graph::MakeCaveman(3, 5);
  // Seed only from a low-degree bridge region with a maximum incumbent.
  std::vector<graph::VertexId> weak_seeds = {0};
  std::vector<graph::VertexId> incumbent = {0, 1, 2, 3, 4};  // a cave
  CliqueResult r = MaxCliqueSeeded(g, weak_seeds, incumbent);
  EXPECT_EQ(r.clique.size(), 5u);
}

TEST(MaxCliqueSeeded, EmptySeedsReturnIncumbent) {
  Graph g = graph::MakeClique(4);
  std::vector<graph::VertexId> incumbent = {1, 2};
  CliqueResult r = MaxCliqueSeeded(g, {}, incumbent);
  EXPECT_EQ(r.clique, incumbent);
}

TEST(MaxClique, BranchCounterMoves) {
  Graph g = graph::MakeErdosRenyi(50, 0.3, 2);
  CliqueResult r = MaxClique(g);
  EXPECT_GT(r.branches, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

}  // namespace
}  // namespace nsky::clique
