#include "clique/nei_sky_mc.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "clique/max_clique.h"
#include "core/domination.h"
#include "core/solver.h"
#include "graph/generators.h"

namespace nsky::clique {
namespace {

using graph::Graph;

TEST(NeiSkyMC, MatchesBaseMccOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = graph::MakeErdosRenyi(40, 0.3, seed);
    NeiSkyMcResult pruned = NeiSkyMC(g);
    CliqueResult base = MaxClique(g);
    EXPECT_TRUE(IsClique(g, pruned.clique.clique));
    EXPECT_EQ(pruned.clique.clique.size(), base.clique.size())
        << "seed " << seed;
  }
}

TEST(NeiSkyMC, MatchesBaseMccOnPowerLaw) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = graph::MakeChungLuPowerLaw(120, 2.4, 8, seed);
    NeiSkyMcResult pruned = NeiSkyMC(g);
    EXPECT_EQ(pruned.clique.clique.size(), MaxClique(g).clique.size())
        << "seed " << seed;
  }
}

TEST(NeiSkyMC, ReportsSkylineMetadata) {
  Graph g = graph::MakeChungLuPowerLaw(300, 2.3, 7, 3);
  NeiSkyMcResult r = NeiSkyMC(g);
  EXPECT_GT(r.skyline_size, 0u);
  EXPECT_LT(r.skyline_size, g.NumVertices());
  EXPECT_GE(r.total_seconds, r.skyline_seconds);
}

TEST(Lemma5, SomeMaximumCliqueIntersectsSkyline) {
  // The correctness basis of NeiSkyMC: swapping any member for its terminal
  // dominator yields a maximum clique meeting R.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = graph::MakeErdosRenyi(35, 0.3, seed);
    auto skyline = core::Solve(g).skyline;
    size_t max_size = BruteForceMaxClique(g).size();
    // Search: does a maximum clique containing a skyline vertex exist?
    // NeiSkyMC's seeded search with a zero incumbent answers exactly that.
    CliqueResult r = MaxCliqueSeeded(g, skyline);
    EXPECT_EQ(r.clique.size(), max_size) << "seed " << seed;
  }
}

TEST(Lemma6, DominatedVertexCliqueNeverLarger) {
  // |MC(v)| <= |MC(u)| when v <= u: check via per-vertex seeded searches.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::MakeErdosRenyi(25, 0.35, seed);
    auto mc_size = [&](graph::VertexId s) {
      std::vector<graph::VertexId> seeds = {s};
      return MaxCliqueSeeded(g, seeds).clique.size();
    };
    for (auto [u, v] : core::AllDominationPairs(g)) {
      EXPECT_LE(mc_size(v), mc_size(u))
          << "v=" << v << " u=" << u << " seed=" << seed;
    }
  }
}

TEST(NeiSkyMC, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(NeiSkyMC(Graph::FromEdges(0, {})).clique.clique.empty());
  EXPECT_EQ(NeiSkyMC(Graph::FromEdges(4, {})).clique.clique.size(), 1u);
}

}  // namespace
}  // namespace nsky::clique
