// POST /v1/edges over the wire: request validation, the nsky.mutate.v1
// document, epoch provenance on every skyline response, and the
// acceptance drill -- mutations racing concurrent queries with zero 5xx
// and every response consistent with exactly one epoch.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/generators.h"
#include "persist/snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"

namespace nsky::server {
namespace {

using graph::Graph;

Graph BaseGraph() { return graph::MakeChungLuPowerLaw(260, 2.4, 5, 19); }

std::string NormalizeSeconds(const std::string& json) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(json, kSeconds, "\"seconds\":X");
}

// One POST round trip with a JSON body.
util::Result<ClientResponse> PostJson(uint16_t port, const std::string& target,
                                      const std::string& body) {
  HttpClient client(port);
  return client.Raw("POST " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n" +
                    "Content-Type: application/json\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string UpdateBody(uint32_t u, uint32_t v, bool insert) {
  return "{\"updates\":[{\"u\":" + std::to_string(u) +
         ",\"v\":" + std::to_string(v) + ",\"op\":\"" +
         (insert ? "insert" : "delete") + "\"}]}";
}

class MutateServer {
 public:
  explicit MutateServer(std::unique_ptr<core::Engine> engine,
                        ServiceOptions options = ServiceOptions{}) {
    service_ = std::make_unique<SkylineService>(std::move(engine), options);
    server_ = std::make_unique<Server>(service_.get(), ServerOptions{});
    auto status = server_->Listen();
    EXPECT_TRUE(status.ok()) << status.ToString();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  ~MutateServer() {
    server_->Shutdown();
    serve_thread_.join();
  }

  uint16_t port() const { return server_->port(); }
  SkylineService& service() { return *service_; }

 private:
  std::unique_ptr<SkylineService> service_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

TEST(MutateEndpoint, AppliesBatchAndAdvancesEpoch) {
  Graph g = BaseGraph();
  ASSERT_FALSE(g.HasEdge(3, 200));
  const uint64_t edges_before = g.NumEdges();
  MutateServer ts(std::make_unique<core::Engine>(std::move(g)));

  // Queries advertise the epoch from the very first response.
  auto before = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().status, 200);
  EXPECT_EQ(before.value().headers.at("x-nsky-epoch"), "0");

  auto r = PostJson(ts.port(), "/v1/edges", UpdateBody(3, 200, true));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().status, 200) << r.value().body;
  const std::string& body = r.value().body;
  EXPECT_NE(body.find("\"schema\":\"nsky.mutate.v1\""), std::string::npos);
  EXPECT_NE(body.find("\"applied\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"skipped\":0"), std::string::npos) << body;
  EXPECT_NE(body.find("\"epoch\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"edges\":" + std::to_string(edges_before + 1)),
            std::string::npos)
      << body;
  EXPECT_EQ(r.value().headers.at("x-nsky-epoch"), "1");

  // The post-mutation answer serves under the new epoch and matches a
  // cold engine built on the mutated graph byte-for-byte (mod seconds).
  auto after = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().status, 200);
  EXPECT_EQ(after.value().headers.at("x-nsky-epoch"), "1");
  Graph mutated = BaseGraph();
  // Rebuild the expected document from a fresh server on the same graph.
  {
    core::Engine oracle(std::move(mutated));
    std::vector<graph::EdgeUpdate> updates = {{3, 200, true}};
    oracle.ApplyUpdates(updates);
    MutateServer oracle_server(
        std::make_unique<core::Engine>(Graph(oracle.graph())));
    auto want = HttpGet(oracle_server.port(), "/v1/skyline");
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(NormalizeSeconds(after.value().body),
              NormalizeSeconds(want.value().body));
  }

  // Duplicate insert: staged no-op, epoch unchanged.
  auto dup = PostJson(ts.port(), "/v1/edges", UpdateBody(3, 200, true));
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(dup.value().status, 200);
  EXPECT_NE(dup.value().body.find("\"applied\":0"), std::string::npos);
  EXPECT_NE(dup.value().body.find("\"skipped\":1"), std::string::npos);
  EXPECT_NE(dup.value().body.find("\"epoch\":1"), std::string::npos);
}

TEST(MutateEndpoint, RequestValidation) {
  MutateServer ts(std::make_unique<core::Engine>(graph::MakeStar(16)));

  // GET on the mutation route is not allowed.
  auto get = HttpGet(ts.port(), "/v1/edges");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value().status, 405);

  const std::string bad_bodies[] = {
      "",                                        // empty
      "not json",                                // unparsable
      "[]",                                      // not an object
      "{}",                                      // missing updates
      "{\"updates\":{}}",                        // updates not an array
      "{\"updates\":[42]}",                      // entry not an object
      "{\"updates\":[{\"u\":1,\"v\":2}]}",       // missing op
      "{\"updates\":[{\"u\":1,\"v\":2,\"op\":\"toggle\"}]}",  // bad op
      "{\"updates\":[{\"u\":-1,\"v\":2,\"op\":\"insert\"}]}",  // negative id
      "{\"updates\":[{\"u\":1.5,\"v\":2,\"op\":\"insert\"}]}",  // fractional
      "{\"updates\":[{\"u\":\"x\",\"v\":2,\"op\":\"insert\"}]}",  // non-number
      "{\"updates\":[{\"u\":4294967296,\"v\":2,\"op\":\"insert\"}]}",  // 2^32
  };
  for (const std::string& body : bad_bodies) {
    auto r = PostJson(ts.port(), "/v1/edges", body);
    ASSERT_TRUE(r.ok()) << body;
    EXPECT_EQ(r.value().status, 400) << "body: " << body;
    EXPECT_NE(r.value().body.find("\"schema\":\"nsky.error.v1\""),
              std::string::npos)
        << body;
  }

  // Nothing mutated: the graph still answers under epoch 0.
  auto q = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().headers.at("x-nsky-epoch"), "0");
}

TEST(MutateEndpoint, DirtySuffixFlowsThroughServingSurfaces) {
  // A snapshot-restored replica that mutates must stop advertising the
  // pristine snapshot id everywhere observable.
  std::string path = ::testing::TempDir() + "/nsky_mutate_" +
                     std::to_string(static_cast<long>(::getpid())) + ".nsnap";
  {
    core::Engine engine(BaseGraph());
    engine.Query();
    ASSERT_TRUE(persist::Save(engine, path).ok());
  }
  auto loaded = persist::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::string id = loaded.value()->snapshot_info()->id;
  MutateServer ts(std::move(loaded).value());

  auto health = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().body, "ok\nsnapshot " + id + "\n");

  auto r = PostJson(ts.port(), "/v1/edges", UpdateBody(3, 200, true));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().status, 200) << r.value().body;

  const std::string dirty = id + "+dirty@epoch1";
  health = HttpGet(ts.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().body, "ok\nsnapshot " + dirty + "\n");
  auto q = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().headers.at("x-nsky-snapshot"), dirty);
  auto stats = HttpGet(ts.port(), "/v1/engine_stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().body.find("\"id\":\"" + dirty + "\""),
            std::string::npos)
      << stats.value().body;
  EXPECT_NE(stats.value().body.find("\"mutation\":{"), std::string::npos)
      << stats.value().body;
  auto queries = HttpGet(ts.port(), "/v1/queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(
      queries.value().body.find("\"origin\":\"snapshot:" + dirty + "\""),
      std::string::npos)
      << queries.value().body;
  auto prom = HttpGet(ts.port(), "/v1/metrics");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().body.find("nsky_engine_epoch 1"), std::string::npos)
      << prom.value().body;
  EXPECT_NE(prom.value().body.find("nsky_engine_mutation_batches 1"),
            std::string::npos)
      << prom.value().body;
  std::remove(path.c_str());
}

// The acceptance drill: a mutator thread toggles one edge through many
// epochs while query threads hammer /v1/skyline. Zero 5xx (or any non-200)
// anywhere, and every query body must be byte-identical (mod seconds) to
// the canonical answer of the epoch its X-Nsky-Epoch header names --
// toggling one edge makes that answer a pure function of epoch parity.
TEST(MutateStress, ConcurrentQueriesAcrossEpochs) {
  Graph g = BaseGraph();
  const uint32_t kU = 5;
  const uint32_t kV = 210;
  ASSERT_FALSE(g.HasEdge(kU, kV));

  ServiceOptions options;
  options.max_inflight = 64;  // nothing sheds; every request must answer
  MutateServer ts(std::make_unique<core::Engine>(std::move(g)), options);

  // Canonical answers per epoch parity, captured before the race: even
  // epochs serve the base graph, odd epochs the base + {kU, kV}.
  std::map<int, std::string> expected;
  auto even = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(even.ok());
  ASSERT_EQ(even.value().status, 200);
  expected[0] = NormalizeSeconds(even.value().body);
  auto flip = PostJson(ts.port(), "/v1/edges", UpdateBody(kU, kV, true));
  ASSERT_TRUE(flip.ok());
  ASSERT_EQ(flip.value().status, 200);
  auto odd = HttpGet(ts.port(), "/v1/skyline");
  ASSERT_TRUE(odd.ok());
  ASSERT_EQ(odd.value().status, 200);
  expected[1] = NormalizeSeconds(odd.value().body);
  ASSERT_NE(expected[0], expected[1])
      << "the toggled edge must change the answer for the drill to bite";

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;  // 100 queries total
  constexpr int kToggles = 8;     // epochs 2 .. 9 during the race
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  std::vector<std::string> first_error(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client(ts.port());
      for (int i = 0; i < kPerThread; ++i) {
        auto r = client.Get("/v1/skyline");
        std::string error;
        if (!r.ok()) {
          error = "transport: " + r.status().ToString();
        } else if (r.value().status != 200) {
          error = "status " + std::to_string(r.value().status) + ": " +
                  r.value().body;
        } else {
          auto it = r.value().headers.find("x-nsky-epoch");
          if (it == r.value().headers.end()) {
            error = "missing X-Nsky-Epoch header";
          } else {
            const int parity = (it->second.back() - '0') % 2;
            if (NormalizeSeconds(r.value().body) != expected[parity]) {
              error = "body does not match epoch " + it->second;
            }
          }
        }
        if (!error.empty()) {
          failures.fetch_add(1);
          if (first_error[t].empty()) first_error[t] = error;
        }
        completed.fetch_add(1);
      }
    });
  }

  // Toggle the edge while the clients hammer; every mutation must succeed
  // and advance the epoch by exactly one.
  uint64_t epoch = 1;
  for (int toggle = 0; toggle < kToggles; ++toggle) {
    while (completed.load() < (toggle + 1) * 10 &&
           completed.load() < kThreads * kPerThread) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const bool insert = (toggle % 2) == 1;  // epoch 1 inserted; 2 deletes
    auto r = PostJson(ts.port(), "/v1/edges", UpdateBody(kU, kV, insert));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().status, 200) << r.value().body;
    ++epoch;
    EXPECT_EQ(r.value().headers.at("x-nsky-epoch"), std::to_string(epoch));
  }

  for (auto& c : clients) c.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
  EXPECT_EQ(failures.load(), 0)
      << "first errors per thread: " << first_error[0] << " | "
      << first_error[1] << " | " << first_error[2] << " | " << first_error[3];
}

}  // namespace
}  // namespace nsky::server
