// Engine::ApplyUpdates oracle suite: after any mutation batch, a warm
// query must be bit-identical -- skyline, dominator array, every
// deterministic SkylineStats counter including aux_peak_bytes -- to a
// cold-built engine on the post-mutation graph, for every algorithm at
// every thread count. Batch sizes straddle DynamicSkyline's bulk threshold
// (31/32/33) so both the incremental and the bulk maintenance paths are
// exercised, and the cached skyline is additionally cross-checked against
// the brute-force definition.
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/domination.h"
#include "core/engine.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "graph/versioned_graph.h"
#include "util/rng.h"

namespace nsky::core {
namespace {

using graph::EdgeUpdate;
using graph::Graph;
using graph::VertexId;

constexpr Algorithm kAlgorithms[] = {Algorithm::kFilterRefine,
                                     Algorithm::kBaseSky, Algorithm::kBaseCSet,
                                     Algorithm::kBase2Hop};
constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// Asserts two results agree on everything deterministic.
void ExpectBitIdentical(const SkylineResult& warm, const SkylineResult& cold,
                        const char* what) {
  EXPECT_EQ(warm.skyline, cold.skyline) << what;
  EXPECT_EQ(warm.dominator, cold.dominator) << what;
  EXPECT_EQ(warm.stats.candidate_count, cold.stats.candidate_count) << what;
  EXPECT_EQ(warm.stats.pairs_examined, cold.stats.pairs_examined) << what;
  EXPECT_EQ(warm.stats.bloom_prunes, cold.stats.bloom_prunes) << what;
  EXPECT_EQ(warm.stats.degree_prunes, cold.stats.degree_prunes) << what;
  EXPECT_EQ(warm.stats.inclusion_tests, cold.stats.inclusion_tests) << what;
  EXPECT_EQ(warm.stats.nbr_elements_scanned, cold.stats.nbr_elements_scanned)
      << what;
  EXPECT_EQ(warm.stats.aux_peak_bytes, cold.stats.aux_peak_bytes) << what;
}

// Warm queries of `engine` vs cold queries of a fresh engine on the same
// (post-mutation) graph, across the full algorithm x thread matrix.
void ExpectWarmMatchesColdRebuild(Engine* engine, const char* what) {
  Engine cold_engine{Graph(engine->graph())};
  for (Algorithm algorithm : kAlgorithms) {
    for (uint32_t threads : kThreadCounts) {
      SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      SkylineResult warm = engine->Query(options);
      SkylineResult cold = cold_engine.Query(options);
      // The oracle engine is warm after its own first query per shape;
      // pin against a genuinely cold solve too.
      SkylineResult solo = Solve(engine->graph(), options);
      ExpectBitIdentical(warm, cold, what);
      ExpectBitIdentical(warm, solo, what);
    }
  }
}

// A random batch of `size` updates against `g`: mixed inserts of absent
// edges and deletes of present ones, self-loop and duplicate pollution
// included so skip accounting is exercised.
std::vector<EdgeUpdate> RandomBatch(const Graph& g, size_t size,
                                    util::Rng* rng) {
  std::vector<EdgeUpdate> updates;
  const VertexId n = g.NumVertices();
  while (updates.size() < size) {
    VertexId u = static_cast<VertexId>(rng->NextUint64(n));
    VertexId v = static_cast<VertexId>(rng->NextUint64(n));
    if (u == v && rng->NextBool(0.9)) continue;  // keep a few self loops
    updates.push_back({u, v, u == v ? true : !g.HasEdge(u, v)});
  }
  return updates;
}

// The canonical drill: warm the engine, apply `batch_size` random updates,
// interleave warm queries, verify against cold rebuilds and brute force.
void RunOracleDrill(Graph g, size_t batch_size, uint64_t seed) {
  util::Rng rng(seed);
  Engine engine(std::move(g));
  engine.Query();         // cold query: builds artifacts
  engine.SkylineCache();  // cached skyline: mutation maintains it

  for (int round = 0; round < 3; ++round) {
    std::vector<EdgeUpdate> batch =
        RandomBatch(engine.graph(), batch_size, &rng);
    const uint64_t epoch_before = engine.epoch();
    Engine::MutationResult outcome = engine.ApplyUpdates(batch);
    EXPECT_EQ(outcome.applied + outcome.skipped, batch.size());
    if (outcome.applied > 0) {
      EXPECT_EQ(outcome.epoch, epoch_before + 1);
    } else {
      EXPECT_EQ(outcome.epoch, epoch_before);
    }

    ExpectWarmMatchesColdRebuild(&engine, "post-mutation round");

    // The maintained skyline cache equals the definitional skyline.
    EXPECT_EQ(engine.SkylineCache(),
              BruteForceSkyline(engine.graph()).skyline)
        << "round " << round << " batch " << batch_size;
  }
}

TEST(MutationOracle, BatchBelowBulkThreshold) {
  RunOracleDrill(graph::MakeChungLuPowerLaw(220, 2.4, 5, 3), 31, 101);
}

TEST(MutationOracle, BatchAtBulkThreshold) {
  RunOracleDrill(graph::MakeChungLuPowerLaw(220, 2.4, 5, 4), 32, 102);
}

TEST(MutationOracle, BatchAboveBulkThreshold) {
  RunOracleDrill(graph::MakeChungLuPowerLaw(220, 2.4, 5, 5), 33, 103);
}

TEST(MutationOracle, SocialGraphMixedBatches) {
  RunOracleDrill(graph::MakeSocialGraph(300, 5.0, 0.6, 0.4, 7, 0.3), 12, 104);
}

TEST(MutationOracle, EmptyNetBatchKeepsEpochAndWarmth) {
  Engine engine(graph::MakeErdosRenyi(150, 0.05, 9));
  engine.Query();
  SkylineResult before = engine.Query();

  // Insert + delete of the same absent edge nets to nothing.
  std::vector<EdgeUpdate> batch = {{1, 100, true}, {1, 100, false}};
  Engine::MutationResult outcome = engine.ApplyUpdates(batch);
  EXPECT_EQ(outcome.epoch, 0u);
  EXPECT_EQ(outcome.applied, 2u);  // both changed the staged view
  SkylineResult after = engine.Query();
  ExpectBitIdentical(after, before, "empty net batch");
}

TEST(MutationOracle, PureSkipBatchIsANoop) {
  Engine engine(graph::MakeErdosRenyi(100, 0.05, 13));
  engine.Query();
  std::vector<EdgeUpdate> batch = {
      {5, 5, true},     // self loop
      {0, 5000, true},  // out of range
  };
  Engine::MutationResult outcome = engine.ApplyUpdates(batch);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(outcome.skipped, 2u);
  EXPECT_EQ(outcome.epoch, 0u);
}

TEST(MutationOracle, SnapshotIdGainsDirtySuffixAfterMutation) {
  Engine engine(graph::MakeErdosRenyi(120, 0.05, 21));
  engine.set_snapshot_info({.id = "cafebabecafebabe"});
  EXPECT_EQ(engine.EffectiveSnapshotInfo()->id, "cafebabecafebabe");

  std::vector<EdgeUpdate> batch = {{0, 100, !engine.graph().HasEdge(0, 100)}};
  Engine::MutationResult outcome = engine.ApplyUpdates(batch);
  ASSERT_EQ(outcome.applied, 1u);
  EXPECT_EQ(engine.EffectiveSnapshotInfo()->id,
            "cafebabecafebabe+dirty@epoch1");
  EXPECT_EQ(engine.StatsSnapshot().snapshot->id,
            "cafebabecafebabe+dirty@epoch1");
  EXPECT_EQ(engine.recorder().origin(),
            "snapshot:cafebabecafebabe+dirty@epoch1");
}

TEST(MutationOracle, MutationStatsAppearInEngineStats) {
  Engine engine(graph::MakeErdosRenyi(150, 0.04, 33));
  engine.Query();
  EXPECT_FALSE(engine.StatsSnapshot().mutation.has_value());

  std::vector<EdgeUpdate> batch = {{2, 2, true},  // skipped
                                   {0, 140, !engine.graph().HasEdge(0, 140)}};
  engine.ApplyUpdates(batch);
  EngineStats stats = engine.StatsSnapshot();
  EXPECT_EQ(stats.epoch, 1u);
  ASSERT_TRUE(stats.mutation.has_value());
  EXPECT_EQ(stats.mutation->batches, 1u);
  EXPECT_EQ(stats.mutation->updates_applied, 1u);
  EXPECT_EQ(stats.mutation->updates_skipped, 1u);
  EXPECT_GT(stats.mutation->dirty_last, 0u);
}

// Epoch snapshots pinned before a mutation stay fully readable after it.
TEST(MutationOracle, PinnedSnapshotSurvivesCommit) {
  Engine engine(graph::MakeErdosRenyi(100, 0.06, 55));
  std::shared_ptr<const Graph> pinned = engine.graph_snapshot();
  const uint64_t edges_before = pinned->NumEdges();

  std::vector<EdgeUpdate> batch = {{0, 50, !pinned->HasEdge(0, 50)}};
  engine.ApplyUpdates(batch);
  EXPECT_EQ(pinned->NumEdges(), edges_before);
  EXPECT_NE(pinned.get(), engine.graph_snapshot().get());
}

// Long randomized soak across many epochs: every epoch's cached skyline
// matches brute force and warm queries stay bit-identical.
TEST(MutationOracle, MultiEpochRandomSoak) {
  util::Rng rng(77);
  Engine engine(graph::MakeChungLuPowerLaw(180, 2.5, 4, 9));
  engine.Query();
  engine.SkylineCache();
  for (int round = 0; round < 10; ++round) {
    const size_t batch_size = 1 + rng.NextUint64(40);  // straddles 32
    std::vector<EdgeUpdate> batch =
        RandomBatch(engine.graph(), batch_size, &rng);
    engine.ApplyUpdates(batch);
    EXPECT_EQ(engine.SkylineCache(),
              BruteForceSkyline(engine.graph()).skyline)
        << "round " << round;
    SolverOptions options;
    options.threads = 1 + static_cast<uint32_t>(rng.NextUint64(8));
    SkylineResult warm = engine.Query(options);
    ExpectBitIdentical(warm, Solve(engine.graph(), options), "soak");
  }
  EngineStats stats = engine.StatsSnapshot();
  ASSERT_TRUE(stats.mutation.has_value());
  EXPECT_EQ(stats.mutation->batches, 10u);
  EXPECT_EQ(stats.epoch, engine.epoch());
}

}  // namespace
}  // namespace nsky::core
