// VersionedGraph: epoch lifecycle, staged-view idempotence, net-batch
// normalization, single-pass CSR commit and snapshot pinning.
#include "graph/versioned_graph.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace nsky::graph {
namespace {

Graph PathGraph(VertexId n) { return MakePath(n); }

// Reference model: the edge set as a std::set of (min, max) pairs.
std::set<std::pair<VertexId, VertexId>> EdgeSet(const Graph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) edges.emplace(u, v);
    }
  }
  return edges;
}

TEST(VersionedGraph, StartsAtEpochZeroWithBaseGraph) {
  VersionedGraph vg(PathGraph(5));
  EXPECT_EQ(vg.epoch(), 0u);
  EXPECT_EQ(vg.Current().NumVertices(), 5u);
  EXPECT_EQ(vg.Current().NumEdges(), 4u);
  EXPECT_EQ(vg.staged_edits(), 0u);
}

TEST(VersionedGraph, StageRejectsInvalidAndNoopUpdates) {
  VersionedGraph vg(PathGraph(4));  // edges 0-1, 1-2, 2-3
  EXPECT_FALSE(vg.Stage({2, 2, true}));   // self loop
  EXPECT_FALSE(vg.Stage({0, 4, true}));   // out of range
  EXPECT_FALSE(vg.Stage({0, 1, true}));   // already present
  EXPECT_FALSE(vg.Stage({0, 3, false}));  // already absent
  EXPECT_EQ(vg.staged_edits(), 0u);

  // Idempotence is against the STAGED view, not the base: once 0-3 is
  // staged, staging it again is a no-op and deleting it cancels.
  EXPECT_TRUE(vg.Stage({0, 3, true}));
  EXPECT_FALSE(vg.Stage({3, 0, true}));
  EXPECT_EQ(vg.staged_edits(), 1u);
  EXPECT_TRUE(vg.Stage({3, 0, false}));  // cancels the staged insert
  EXPECT_EQ(vg.staged_edits(), 0u);
  EXPECT_TRUE(vg.StagedUpdates().empty());
}

TEST(VersionedGraph, StagedUpdatesEmitsNormalizedNetBatch) {
  VersionedGraph vg(PathGraph(6));
  EXPECT_TRUE(vg.Stage({5, 0, true}));
  EXPECT_TRUE(vg.Stage({2, 1, false}));
  EXPECT_TRUE(vg.Stage({4, 1, true}));
  std::vector<EdgeUpdate> net = vg.StagedUpdates();
  ASSERT_EQ(net.size(), 3u);
  // u < v, ascending by (u, v), inserts and deletes interleaved.
  EXPECT_EQ(net[0].u, 0u);
  EXPECT_EQ(net[0].v, 5u);
  EXPECT_TRUE(net[0].insert);
  EXPECT_EQ(net[1].u, 1u);
  EXPECT_EQ(net[1].v, 2u);
  EXPECT_FALSE(net[1].insert);
  EXPECT_EQ(net[2].u, 1u);
  EXPECT_EQ(net[2].v, 4u);
  EXPECT_TRUE(net[2].insert);
}

TEST(VersionedGraph, CommitPublishesNextEpochAndPinsOldSnapshot) {
  VersionedGraph vg(PathGraph(4));
  std::shared_ptr<const Graph> old_snap = vg.Snapshot();
  EXPECT_TRUE(vg.Stage({0, 2, true}));
  EXPECT_TRUE(vg.Stage({1, 2, false}));
  std::shared_ptr<const Graph> new_snap = vg.Commit();

  EXPECT_EQ(vg.epoch(), 1u);
  EXPECT_EQ(vg.staged_edits(), 0u);
  EXPECT_EQ(&vg.Current(), new_snap.get());
  // The new epoch reflects the batch...
  EXPECT_TRUE(new_snap->HasEdge(0, 2));
  EXPECT_FALSE(new_snap->HasEdge(1, 2));
  EXPECT_EQ(new_snap->NumEdges(), 3u);
  // ...while the pinned snapshot still reads the pre-commit adjacency.
  EXPECT_FALSE(old_snap->HasEdge(0, 2));
  EXPECT_TRUE(old_snap->HasEdge(1, 2));
  EXPECT_EQ(old_snap->NumEdges(), 3u);
}

TEST(VersionedGraph, DiscardStagedKeepsCurrentEpoch) {
  VersionedGraph vg(PathGraph(4));
  EXPECT_TRUE(vg.Stage({0, 3, true}));
  vg.DiscardStaged();
  EXPECT_EQ(vg.staged_edits(), 0u);
  EXPECT_EQ(vg.epoch(), 0u);
  EXPECT_FALSE(vg.Current().HasEdge(0, 3));
}

TEST(VersionedGraph, ResetRewindsEpochAndReplacesBase) {
  VersionedGraph vg(PathGraph(4));
  EXPECT_TRUE(vg.Stage({0, 2, true}));
  vg.Commit();
  EXPECT_EQ(vg.epoch(), 1u);
  vg.Reset(MakeStar(7));
  EXPECT_EQ(vg.epoch(), 0u);
  EXPECT_EQ(vg.Current().NumVertices(), 7u);
  EXPECT_EQ(vg.staged_edits(), 0u);
}

// Randomized differential: many epochs of random toggles, each commit
// cross-checked against a set-based reference model.
TEST(VersionedGraph, RandomToggleEpochsMatchReferenceModel) {
  const VertexId n = 40;
  Graph g = MakeErdosRenyi(n, 0.08, 17);
  std::set<std::pair<VertexId, VertexId>> model = EdgeSet(g);
  VersionedGraph vg(std::move(g));
  util::Rng rng(29);

  for (int epoch = 1; epoch <= 12; ++epoch) {
    size_t staged = 0;
    for (int i = 0; i < 25; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextUint64(n));
      VertexId v = static_cast<VertexId>(rng.NextUint64(n));
      if (u == v) continue;
      auto key = std::minmax(u, v);
      const bool present = model.count({key.first, key.second}) > 0;
      // Toggle: insert when absent, delete when present (never a no-op,
      // so Stage must accept every one of these).
      EXPECT_TRUE(vg.Stage({u, v, !present}));
      if (present) {
        model.erase({key.first, key.second});
      } else {
        model.emplace(key.first, key.second);
      }
      ++staged;
    }
    if (staged == 0) continue;
    EXPECT_EQ(vg.staged_edits(), vg.StagedUpdates().size());
    std::shared_ptr<const Graph> snap = vg.Commit();
    EXPECT_EQ(vg.epoch(), static_cast<uint64_t>(epoch));
    EXPECT_EQ(EdgeSet(*snap), model) << "epoch " << epoch;
    // CSR invariants survived the merge: sorted unique rows both ways.
    for (VertexId u = 0; u < n; ++u) {
      auto row = snap->Neighbors(u);
      EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
      for (VertexId v : row) EXPECT_TRUE(snap->HasEdge(v, u));
    }
  }
}

}  // namespace
}  // namespace nsky::graph
