// PreparedGraph::RepairForUpdates: locally patched artifacts must be
// bit-identical to a fresh build on the post-mutation graph -- filter
// verdicts and replayed stats, bloom rows, 2-hop lists and ledger charges,
// the degree order -- and the fallback drop must trigger deterministically
// when the dirty set's 2-hop volume exceeds kRepairMaxDirtyPercent of the
// graph's (volume, not vertex count: hubs enter the dirty set often).
#include "core/prepared_graph.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bloom.h"
#include "graph/generators.h"
#include "graph/versioned_graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nsky::core {
namespace {

using graph::EdgeUpdate;
using graph::Graph;
using graph::VersionedGraph;
using graph::VertexId;

constexpr uint32_t kBloomBits = 256;

// Builds every repairable artifact of `prepared` (filter, both bloom
// blocks, 2-hop, degree order, cores).
void WarmAllArtifacts(PreparedGraph* prepared, util::ThreadPool* pool) {
  prepared->Filter(*pool);
  prepared->CandidateBlooms(kBloomBits, *pool);
  prepared->FullBlooms(kBloomBits, *pool);
  prepared->TwoHop(*pool);
  prepared->DegreeOrder();
  prepared->Cores();
}

void ExpectBloomsEqual(const NeighborhoodBlooms& got,
                       const NeighborhoodBlooms& want, const char* what) {
  EXPECT_EQ(got.bits(), want.bits()) << what;
  EXPECT_EQ(got.slots(), want.slots()) << what;
  EXPECT_EQ(got.words(), want.words()) << what;
}

// The oracle: every artifact still materialized after the repair must be
// bit-identical to a fresh PreparedGraph's build on `new_g`.
void ExpectRepairedMatchesFreshBuild(const PreparedGraph& repaired,
                                     const Graph& new_g,
                                     util::ThreadPool* pool) {
  PreparedGraph fresh(&new_g);
  const PreparedGraph::FilterArtifacts* got_filter = repaired.PeekFilter();
  ASSERT_NE(got_filter, nullptr);
  const PreparedGraph::FilterArtifacts& want_filter = fresh.Filter(*pool);
  EXPECT_EQ(got_filter->candidates, want_filter.candidates);
  EXPECT_EQ(got_filter->dominator, want_filter.dominator);
  EXPECT_EQ(got_filter->member, want_filter.member);
  EXPECT_EQ(got_filter->stats.candidate_count,
            want_filter.stats.candidate_count);
  EXPECT_EQ(got_filter->stats.pairs_examined,
            want_filter.stats.pairs_examined);
  EXPECT_EQ(got_filter->stats.degree_prunes, want_filter.stats.degree_prunes);
  EXPECT_EQ(got_filter->stats.inclusion_tests,
            want_filter.stats.inclusion_tests);
  EXPECT_EQ(got_filter->stats.nbr_elements_scanned,
            want_filter.stats.nbr_elements_scanned);
  EXPECT_EQ(got_filter->stats.aux_peak_bytes,
            want_filter.stats.aux_peak_bytes);

  const NeighborhoodBlooms* got_cand =
      repaired.PeekCandidateBlooms(kBloomBits);
  ASSERT_NE(got_cand, nullptr);
  ExpectBloomsEqual(*got_cand, fresh.CandidateBlooms(kBloomBits, *pool),
                    "candidate blooms");
  const NeighborhoodBlooms* got_full = repaired.PeekFullBlooms(kBloomBits);
  ASSERT_NE(got_full, nullptr);
  ExpectBloomsEqual(*got_full, fresh.FullBlooms(kBloomBits, *pool),
                    "full blooms");

  const PreparedGraph::TwoHopArtifacts* got_two_hop = repaired.PeekTwoHop();
  ASSERT_NE(got_two_hop, nullptr);
  const PreparedGraph::TwoHopArtifacts& want_two_hop = fresh.TwoHop(*pool);
  EXPECT_EQ(got_two_hop->lists, want_two_hop.lists);
  EXPECT_EQ(got_two_hop->charged_bytes, want_two_hop.charged_bytes);

  const std::vector<VertexId>* got_order = repaired.PeekDegreeOrder();
  ASSERT_NE(got_order, nullptr);
  EXPECT_EQ(*got_order, fresh.DegreeOrder());
}

// Stages `updates` on a copy of `g`, commits, runs RepairForUpdates against
// the artifacts previously built on `g`, and cross-checks every artifact.
// Returns the outcome for policy assertions.
PreparedGraph::RepairOutcome RepairAndCheck(
    Graph g, const std::vector<EdgeUpdate>& updates) {
  util::ThreadPool pool(1);
  VersionedGraph vg(std::move(g));
  std::shared_ptr<const Graph> old_snap = vg.Snapshot();
  PreparedGraph prepared(old_snap.get());
  WarmAllArtifacts(&prepared, &pool);

  size_t staged = 0;
  for (const EdgeUpdate& update : updates) staged += vg.Stage(update);
  EXPECT_GT(staged, 0u) << "test batch must change the graph";
  std::vector<EdgeUpdate> net = vg.StagedUpdates();
  std::shared_ptr<const Graph> new_snap = vg.Commit();

  PreparedGraph::RepairOutcome outcome =
      prepared.RepairForUpdates(*old_snap, *new_snap, net);
  EXPECT_EQ(&prepared.graph(), new_snap.get());
  if (outcome.repaired) {
    // Cores have no local repair: always dropped, never stale.
    EXPECT_EQ(prepared.PeekCores(), nullptr);
    ExpectRepairedMatchesFreshBuild(prepared, *new_snap, &pool);
  } else {
    EXPECT_EQ(prepared.PeekFilter(), nullptr);
    EXPECT_EQ(prepared.PeekTwoHop(), nullptr);
    EXPECT_EQ(prepared.PeekDegreeOrder(), nullptr);
    EXPECT_EQ(prepared.PeekCores(), nullptr);
    EXPECT_TRUE(prepared.CandidateBloomWidths().empty());
    EXPECT_TRUE(prepared.FullBloomWidths().empty());
  }
  return outcome;
}

// Two non-adjacent moderate-degree vertices (hub endpoints would trip the
// volume fallback instead of exercising the patch path).
std::pair<VertexId, VertexId> ModerateNonEdge(const Graph& g) {
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    if (g.Degree(u) < 2 || g.Degree(u) > 8) continue;
    for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
      if (g.Degree(v) < 2 || g.Degree(v) > 8) continue;
      if (!g.HasEdge(u, v)) return {u, v};
    }
  }
  return {0, 0};
}

TEST(RepairForUpdates, SingleInsertPatchesAllArtifacts) {
  Graph g = graph::MakeChungLuPowerLaw(400, 2.4, 6, 5);
  auto [u, v] = ModerateNonEdge(g);
  ASSERT_NE(u, v);
  auto outcome = RepairAndCheck(std::move(g), {{u, v, true}});
  EXPECT_TRUE(outcome.repaired);
  EXPECT_GT(outcome.dirty_vertices, 0u);
  EXPECT_GT(outcome.patched_artifacts, 0u);
}

TEST(RepairForUpdates, SingleDeletePatchesAllArtifacts) {
  Graph g = graph::MakeChungLuPowerLaw(400, 2.4, 6, 5);
  // Delete an edge between two moderate-degree endpoints.
  VertexId u = 0, v = 0;
  for (VertexId a = 0; a < g.NumVertices() && u == v; ++a) {
    if (g.Degree(a) < 2 || g.Degree(a) > 8) continue;
    for (VertexId b : g.Neighbors(a)) {
      if (g.Degree(b) >= 2 && g.Degree(b) <= 8) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, v);
  auto outcome = RepairAndCheck(std::move(g), {{u, v, false}});
  EXPECT_TRUE(outcome.repaired);
}

TEST(RepairForUpdates, HubInsertFallsBackOnVolumeNotCount) {
  // Vertex 0 is the Chung-Lu hub (degree ~41 of n=400): one insert dirties
  // only ~11% of the VERTICES but ~32% of the graph's 2-hop VOLUME --
  // exactly the skew the volume-based fallback exists to catch. A
  // count-based policy would wrongly attempt the near-rebuild-cost patch.
  Graph g = graph::MakeChungLuPowerLaw(400, 2.4, 6, 5);
  ASSERT_GT(g.Degree(0), 30u);
  ASSERT_FALSE(g.HasEdge(0, 200));
  const VertexId n = g.NumVertices();
  auto outcome = RepairAndCheck(std::move(g), {{0, 200, true}});
  EXPECT_FALSE(outcome.repaired);
  EXPECT_LT(outcome.dirty_vertices * 100, uint64_t{n} *
                                              PreparedGraph::kRepairMaxDirtyPercent)
      << "hub dirty set should be small by count; only volume trips it";
  EXPECT_GT(outcome.dropped_artifacts, 0u);
}

TEST(RepairForUpdates, MixedBatchOnSocialGraph) {
  Graph g = graph::MakeSocialGraph(500, 6.0, 0.6, 0.4, 11, 0.3);
  std::vector<EdgeUpdate> updates;
  // Mixed inserts and deletes confined to low-degree endpoints: touching a
  // hub dirties its whole neighborhood, which would trip the fallback
  // instead of exercising the patch path this test is about.
  std::vector<VertexId> quiet;
  for (VertexId u = 0; u < g.NumVertices() && quiet.size() < 40; ++u) {
    if (g.Degree(u) >= 1 && g.Degree(u) <= 3) quiet.push_back(u);
  }
  ASSERT_GE(quiet.size(), 10u);
  size_t inserts = 0;
  for (size_t i = 0; i + 1 < quiet.size() && inserts < 5; i += 2) {
    if (g.HasEdge(quiet[i], quiet[i + 1])) continue;
    updates.push_back({quiet[i], quiet[i + 1], true});
    ++inserts;
  }
  EXPECT_GE(inserts, 4u);
  size_t deletes = 0;
  for (VertexId u : quiet) {
    if (deletes >= 3) break;
    for (VertexId v : g.Neighbors(u)) {
      if (g.Degree(v) > 15) continue;  // skip hub partners
      updates.push_back({u, v, false});
      ++deletes;
      break;
    }
  }
  EXPECT_GE(deletes, 2u);
  auto outcome = RepairAndCheck(std::move(g), updates);
  EXPECT_TRUE(outcome.repaired);
}

TEST(RepairForUpdates, HubEdgeFallsBackWhenDirtySetExplodes) {
  // A star's center neighbors every vertex: touching the center dirties
  // n-1 vertices, far past kRepairMaxDirtyPercent, so the repair must
  // deterministically drop everything instead of patching.
  Graph g = graph::MakeStar(64);
  auto outcome = RepairAndCheck(std::move(g), {{0, 1, false}});
  EXPECT_FALSE(outcome.repaired);
  EXPECT_GT(outcome.dropped_artifacts, 0u);
  EXPECT_EQ(outcome.patched_artifacts, 0u);
}

TEST(RepairForUpdates, RepairsCountInCacheStatsNotHitsOrMisses) {
  util::ThreadPool pool(1);
  VersionedGraph vg(graph::MakeErdosRenyi(300, 0.03, 23));
  std::shared_ptr<const Graph> old_snap = vg.Snapshot();
  PreparedGraph prepared(old_snap.get());
  WarmAllArtifacts(&prepared, &pool);
  const uint64_t builds_before = prepared.builds();
  PreparedGraph::CacheStats before = prepared.CacheStatsSnapshot();

  ASSERT_TRUE(vg.Stage({7, 250, true}));
  std::vector<EdgeUpdate> net = vg.StagedUpdates();
  std::shared_ptr<const Graph> new_snap = vg.Commit();
  auto outcome = prepared.RepairForUpdates(*old_snap, *new_snap, net);
  ASSERT_TRUE(outcome.repaired);

  PreparedGraph::CacheStats after = prepared.CacheStatsSnapshot();
  EXPECT_EQ(prepared.builds(), builds_before) << "a repair is not a build";
  EXPECT_EQ(after.filter.misses, before.filter.misses);
  EXPECT_EQ(after.filter.hits, before.filter.hits);
  EXPECT_EQ(after.filter.repairs, before.filter.repairs + 1);
  EXPECT_EQ(after.two_hop.repairs, before.two_hop.repairs + 1);
  EXPECT_EQ(after.degree_order.repairs, before.degree_order.repairs + 1);
  EXPECT_EQ(after.full_blooms.at(kBloomBits).repairs,
            before.full_blooms.at(kBloomBits).repairs + 1);
}

TEST(RepairForUpdates, AbsentArtifactsStayAbsent) {
  util::ThreadPool pool(1);
  VersionedGraph vg(graph::MakeErdosRenyi(200, 0.04, 31));
  std::shared_ptr<const Graph> old_snap = vg.Snapshot();
  PreparedGraph prepared(old_snap.get());
  prepared.Filter(pool);  // only the filter is materialized

  ASSERT_TRUE(vg.Stage({3, 150, true}));
  std::vector<EdgeUpdate> net = vg.StagedUpdates();
  std::shared_ptr<const Graph> new_snap = vg.Commit();
  auto outcome = prepared.RepairForUpdates(*old_snap, *new_snap, net);
  ASSERT_TRUE(outcome.repaired);
  EXPECT_NE(prepared.PeekFilter(), nullptr);
  EXPECT_EQ(prepared.PeekTwoHop(), nullptr);
  EXPECT_EQ(prepared.PeekDegreeOrder(), nullptr);
  EXPECT_TRUE(prepared.FullBloomWidths().empty());
}

// Randomized sweep: repeated random batches, each repair oracle-checked.
TEST(RepairForUpdates, RandomizedBatchesStayBitIdentical) {
  util::Rng rng(41);
  const VertexId n = 250;
  Graph current = graph::MakeChungLuPowerLaw(n, 2.5, 5, 7);
  for (int round = 0; round < 8; ++round) {
    std::vector<EdgeUpdate> updates;
    for (int i = 0; i < 6; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextUint64(n));
      VertexId v = static_cast<VertexId>(rng.NextUint64(n));
      if (u == v) continue;
      updates.push_back({u, v, !current.HasEdge(u, v)});
    }
    if (updates.empty()) continue;
    Graph next = current;  // keep evolving the same graph across rounds
    RepairAndCheck(std::move(current), updates);
    VersionedGraph vg(std::move(next));
    for (const EdgeUpdate& update : updates) vg.Stage(update);
    if (vg.staged_edits() > 0) {
      current = *vg.Commit();
    } else {
      current = vg.Current();
    }
  }
}

}  // namespace
}  // namespace nsky::core
