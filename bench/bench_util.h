// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary prints (a) a header identifying the paper artifact it
// regenerates, (b) a plain-text table with the same rows/series the paper
// reports, and (c) a short expectation line describing the shape the paper
// observed. Binaries are deterministic and sized to finish in seconds to a
// few minutes on one core.
#ifndef NSKY_BENCH_BENCH_UTIL_H_
#define NSKY_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace nsky::bench {

// Prints the standard banner for a paper artifact.
inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", artifact, description);
  std::printf("==============================================================\n");
}

// Fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void PrintHeader() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

// Number formatting shortcuts.
inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtU(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Seconds with adaptive precision (benchmark tables).
inline std::string FmtSecs(double s) {
  char buf[32];
  if (s >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f", s);
  } else if (s >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  }
  return buf;
}

}  // namespace nsky::bench

#endif  // NSKY_BENCH_BENCH_UTIL_H_
