// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary prints (a) a header identifying the paper artifact it
// regenerates, (b) a plain-text table with the same rows/series the paper
// reports, and (c) a short expectation line describing the shape the paper
// observed. Binaries are deterministic and sized to finish in seconds to a
// few minutes on one core.
//
// In addition to the text table, a binary can register rows with a
// JsonReporter to emit a machine-readable record of the same measurements --
// the input of the perf trajectory (BENCH_*.json). The report goes to a file
// (never stdout), so the text output stays byte-identical.
#ifndef NSKY_BENCH_BENCH_UTIL_H_
#define NSKY_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "util/json_writer.h"

namespace nsky::bench {

// Returns a copy of `base` with the algorithm switched -- keeps the option
// plumbing in per-bench code to one-liners around core::Solve().
inline core::SolverOptions With(core::SolverOptions base, core::Algorithm a) {
  base.algorithm = a;
  return base;
}

// Prints the standard banner for a paper artifact.
inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s -- %s\n", artifact, description);
  std::printf("==============================================================\n");
}

// Fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void PrintHeader() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

// Worker count for solver benches: first "--threads N" on the command line,
// else $NSKY_THREADS, else 1 (the deterministic sequential default). Solver
// results are bit-identical for any value; only wall time changes.
inline uint32_t BenchThreads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v >= 0 && v <= 4096) return static_cast<uint32_t>(v);
    }
  }
  if (const char* env = std::getenv("NSKY_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 0 && v <= 4096) return static_cast<uint32_t>(v);
  }
  return 1;
}

// Number formatting shortcuts.
inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtU(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Nearest-rank percentile (q in [0, 1]) over raw samples; sorts a copy.
// Exact on the measured data, unlike the bucketed estimates a histogram
// gives -- latency benches report these and let the engine's own
// EstimateQuantile numbers be cross-checked against them.
inline double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(values.size() - 1) +
                                    0.5);
  return values[rank];
}

// Seconds with adaptive precision (benchmark tables).
inline std::string FmtSecs(double s) {
  char buf[32];
  if (s >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f", s);
  } else if (s >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", s);
  }
  return buf;
}

// Machine-readable report writer: {"bench":<name>,"schema":"nsky.bench.v1",
// "rows":[{<field>:<value>,...},...]}. Rows hold scalar fields in insertion
// order. The report is written by Write() (or the destructor as a fallback)
// to, in order of preference:
//   1. $NSKY_BENCH_JSON            -- exact output path
//   2. $NSKY_BENCH_JSON_DIR/<bench>.json
//   3. ./<bench>.json
class JsonReporter {
 public:
  class Row {
   public:
    Row& Str(std::string key, std::string value) {
      cells_.push_back({std::move(key), Cell::kStr, 0, 0.0, std::move(value)});
      return *this;
    }
    Row& U64(std::string key, uint64_t value) {
      cells_.push_back({std::move(key), Cell::kU64, value, 0.0, {}});
      return *this;
    }
    Row& F64(std::string key, double value) {
      cells_.push_back({std::move(key), Cell::kF64, 0, value, {}});
      return *this;
    }

   private:
    friend class JsonReporter;
    struct Cell {
      std::string key;
      enum Kind { kStr, kU64, kF64 } kind;
      uint64_t u64;
      double f64;
      std::string str;
    };
    std::vector<Cell> cells_;
  };

  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)), output_stem_(bench_name_) {}

  // Same report, but the default output file is <output_stem>.json instead
  // of <bench_name>.json -- the perf-trajectory files committed to the repo
  // (BENCH_*.json) keep their own naming while "bench" stays the binary
  // name. $NSKY_BENCH_JSON still overrides the full path.
  JsonReporter(std::string bench_name, std::string output_stem)
      : bench_name_(std::move(bench_name)),
        output_stem_(std::move(output_stem)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!written_) Write();
  }

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string ToJson() const {
    util::JsonWriter w;
    w.BeginObject();
    w.KV("schema", "nsky.bench.v1");
    w.KV("bench", bench_name_);
    w.Key("rows");
    w.BeginArray();
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const Row::Cell& c : row.cells_) {
        switch (c.kind) {
          case Row::Cell::kStr:
            w.KV(c.key, c.str);
            break;
          case Row::Cell::kU64:
            w.KV(c.key, c.u64);
            break;
          case Row::Cell::kF64:
            w.KV(c.key, c.f64);
            break;
        }
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return std::move(w).Take();
  }

  std::string OutputPath() const {
    if (const char* path = std::getenv("NSKY_BENCH_JSON")) return path;
    if (const char* dir = std::getenv("NSKY_BENCH_JSON_DIR")) {
      return std::string(dir) + "/" + output_stem_ + ".json";
    }
    return output_stem_ + ".json";
  }

  // Writes the report; on failure prints a warning to stderr (a bench run
  // must not fail because the report directory is read-only).
  bool Write() {
    written_ = true;
    std::string path = OutputPath();
    std::string json = ToJson();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write bench report %s\n",
                   path.c_str());
      return false;
    }
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fclose(f) == 0 && ok;
    // stderr so the stdout table stays byte-identical with older runs.
    if (ok) std::fprintf(stderr, "[json report: %s]\n", path.c_str());
    return ok;
  }

 private:
  std::string bench_name_;
  std::string output_stem_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace nsky::bench

#endif  // NSKY_BENCH_BENCH_UTIL_H_
