// Fig. 3 (Exp-1): runtime of the five neighborhood-skyline computation
// algorithms -- LC-Join, BaseSky, Base2Hop, BaseCSet, FilterRefineSky --
// on the five Table I stand-ins.
#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "setjoin/skyline_via_join.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Fig. 3 (Exp-1)",
                "runtime of neighborhood skyline computation algorithms (s)");
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);

  const char* names[] = {"notredame", "youtube", "wikitalk", "flixster",
                         "dblp"};
  bench::Table table({"dataset", "LC-Join", "BaseSky", "Base2Hop", "BaseCSet",
                      "FilterRefine"},
                     14);
  table.PrintHeader();
  bench::JsonReporter report("bench_fig3_runtime");
  for (const char* name : names) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kFull).value();

    util::Timer t1;
    auto lc = setjoin::SkylineViaJoin(g);
    double lc_s = t1.Seconds();

    util::Timer t2;
    auto bs = core::Solve(g, bench::With(options, core::Algorithm::kBaseSky));
    double bs_s = t2.Seconds();

    util::Timer t3;
    auto b2 = core::Solve(g, bench::With(options, core::Algorithm::kBase2Hop));
    double b2_s = t3.Seconds();

    util::Timer t4;
    auto bc = core::Solve(g, bench::With(options, core::Algorithm::kBaseCSet));
    double bc_s = t4.Seconds();

    util::Timer t5;
    auto fr = core::Solve(g, bench::With(options, core::Algorithm::kFilterRefine));
    double fr_s = t5.Seconds();

    // All five must agree -- a silent mismatch would invalidate the bench.
    if (lc.skyline != bs.skyline || b2.skyline != bs.skyline ||
        bc.skyline != bs.skyline || fr.skyline != bs.skyline) {
      std::fprintf(stderr, "FATAL: solvers disagree on %s\n", name);
      return 1;
    }
    table.PrintRow({name, bench::FmtSecs(lc_s), bench::FmtSecs(bs_s),
                    bench::FmtSecs(b2_s), bench::FmtSecs(bc_s),
                    bench::FmtSecs(fr_s)});

    auto add_row = [&](const char* algorithm, double seconds,
                       const core::SkylineStats& stats) {
      report.AddRow()
          .Str("dataset", name)
          .Str("algorithm", algorithm)
          .F64("seconds", seconds)
          .U64("skyline_size", bs.skyline.size())
          .U64("candidate_count", stats.candidate_count)
          .U64("pairs_examined", stats.pairs_examined)
          .U64("bloom_prunes", stats.bloom_prunes)
          .U64("degree_prunes", stats.degree_prunes)
          .U64("inclusion_tests", stats.inclusion_tests)
          .U64("nbr_elements_scanned", stats.nbr_elements_scanned)
          .U64("aux_peak_bytes", stats.aux_peak_bytes)
          .U64("threads", stats.threads)
          .Str("degraded_from", stats.degraded_from);
    };
    add_row("LC-Join", lc_s, lc.stats);
    add_row("BaseSky", bs_s, bs.stats);
    add_row("Base2Hop", b2_s, b2.stats);
    add_row("BaseCSet", bc_s, bc.stats);
    add_row("FilterRefine", fr_s, fr.stats);
  }
  report.Write();
  std::printf(
      "\nExpectation (paper): FilterRefineSky fastest everywhere (1.6-8.4x\n"
      "vs LC-Join, 4-35x vs BaseSky); Base2Hop and BaseCSet in between.\n");
  return 0;
}
