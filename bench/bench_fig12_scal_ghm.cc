// Fig. 12 (Exp-7): scalability of Greedy-H (BaseGH) vs NeiSkyGH on the
// LiveJournal stand-in, varying n and rho (k = 10).
#include "bench_util.h"
#include "centrality/greedy.h"
#include "datasets/registry.h"
#include "graph/sampling.h"

namespace {

void RunSeries(const nsky::graph::Graph& base_graph, bool vary_vertices) {
  using namespace nsky;
  bench::Table table({vary_vertices ? "n%" : "rho%", "n", "BaseGH_s",
                      "NeiSkyGH_s", "speedup", "score_equal"},
                     14);
  table.PrintHeader();
  for (int pct : {20, 40, 60, 80, 100}) {
    double frac = pct / 100.0;
    graph::Graph g = vary_vertices
                         ? graph::SampleVertices(base_graph, frac, 34)
                         : graph::SampleEdges(base_graph, frac, 34);
    auto base = centrality::BaseGH(g, 10);
    auto sky = centrality::NeiSkyGH(g, 10);
    bool equal = std::abs(base.score - sky.score) <=
                 1e-9 * std::max(1.0, std::abs(base.score));
    table.PrintRow({bench::FmtU(pct), bench::FmtU(g.NumVertices()),
                    bench::FmtSecs(base.seconds), bench::FmtSecs(sky.seconds),
                    bench::Fmt(base.seconds / sky.seconds, "%.2f"),
                    equal ? "yes" : "NO"});
  }
}

}  // namespace

int main() {
  using namespace nsky;
  graph::Graph lj =
      datasets::MakeStandin("livejournal", datasets::StandinScale::kSmall)
          .value();

  bench::Banner("Fig. 12(a) (Exp-7)", "GHM scalability, vary n (k = 10)");
  RunSeries(lj, /*vary_vertices=*/true);
  std::printf("\n");
  bench::Banner("Fig. 12(b) (Exp-7)", "GHM scalability, vary rho (k = 10)");
  RunSeries(lj, /*vary_vertices=*/false);

  std::printf(
      "\nExpectation (paper): NeiSkyGH superior to Greedy-H under all\n"
      "settings, with smoother scaling.\n");
  return 0;
}
