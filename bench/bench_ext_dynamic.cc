// Extension bench (beyond the paper): incremental skyline maintenance
// throughput. Compares per-update DynamicSkyline against full
// FilterRefineSky recomputation over a stream of edge insertions and
// deletions on a social-graph stand-in.
#include "bench_util.h"
#include "core/dynamic_skyline.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);
  bench::Banner("Extension: dynamic maintenance",
                "per-update skyline maintenance vs full recomputation");

  bench::Table table({"n", "updates", "incremental_s", "recompute_s",
                      "speedup", "rechecks/update"},
                     16);
  table.PrintHeader();
  for (graph::VertexId n : {2000u, 8000u, 32000u}) {
    graph::Graph g = graph::MakeSocialGraph(n, 6.0, 0.6, 0.4, 5, 0.3);
    const int kUpdates = 400;
    util::Rng rng(99);

    // Incremental: maintain across a random mixed stream.
    core::DynamicSkyline dyn(g);
    std::vector<graph::Edge> inserted;
    util::Timer inc_timer;
    for (int i = 0; i < kUpdates; ++i) {
      if (!inserted.empty() && rng.NextBool(0.3)) {
        auto [u, v] = inserted.back();
        inserted.pop_back();
        dyn.RemoveEdge(u, v);
      } else {
        auto u = static_cast<graph::VertexId>(rng.NextUint64(n));
        auto v = static_cast<graph::VertexId>(rng.NextUint64(n));
        if (u == v || dyn.HasEdge(u, v)) continue;
        dyn.AddEdge(u, v);
        inserted.emplace_back(u, v);
      }
    }
    double inc_s = inc_timer.Seconds();

    // Full recomputation cost per update (one representative recompute,
    // scaled to the update count).
    util::Timer rec_timer;
    auto full = core::Solve(dyn.ToGraph(), options);
    double rec_s = rec_timer.Seconds() * kUpdates;

    // The maintained skyline must equal the recomputed one.
    if (dyn.Skyline() != full.skyline) {
      std::fprintf(stderr, "FATAL: dynamic skyline diverged at n=%u\n", n);
      return 1;
    }
    table.PrintRow({bench::FmtU(n), bench::FmtU(kUpdates),
                    bench::FmtSecs(inc_s), bench::FmtSecs(rec_s),
                    bench::Fmt(rec_s / inc_s, "%.1f"),
                    bench::Fmt(static_cast<double>(dyn.total_rechecks()) /
                                   kUpdates,
                               "%.1f")});
  }
  std::printf(
      "\nExpectation: incremental maintenance beats per-update full\n"
      "recomputation by a growing factor as n increases (the affected set\n"
      "is local, the recompute is global).\n");
  return 0;
}
