// Snapshot cold-start trajectory: restoring a warm engine from a persisted
// snapshot (persist::Load) versus building the same state from the graph.
//
// Perf-trajectory bench; its report is committed as BENCH_persist.json. For
// each Table-1 stand-in it measures the cold path (construct an engine and
// run one query per artifact-bearing algorithm, so every build the snapshot
// carries is paid for), then Save, then Load, then one warm query from the
// restored engine -- asserting the restored query is bit-identical to the
// cold one before reporting. The headline column is speedup = cold build
// time / load time; serving replicas restore a fleet-wide snapshot instead
// of rebuilding per process, so this ratio is what a rollout buys.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "persist/snapshot.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Snapshot cold start",
                "persist::Load vs cold artifact build, stand-in datasets");

  const uint32_t threads = bench::BenchThreads(argc, argv);
  constexpr core::Algorithm kAlgorithms[] = {core::Algorithm::kFilterRefine,
                                             core::Algorithm::kBase2Hop,
                                             core::Algorithm::kBaseCSet};

  bench::JsonReporter report("bench_snapshot_cold_start", "BENCH_persist");
  bench::Table table({"dataset", "build_ms", "save_ms", "load_ms", "speedup",
                      "file_mb", "sections", "skyline"},
                     12);
  table.PrintHeader();

  for (const auto& spec : datasets::AllStandins()) {
    graph::Graph g =
        datasets::MakeStandin(spec, datasets::StandinScale::kSmall);
    const uint64_t n = g.NumVertices(), m = g.NumEdges();

    // Cold path: every artifact the snapshot will carry gets built here.
    core::Engine cold(std::move(g));
    core::SkylineResult reference;
    util::Timer build_timer;
    for (core::Algorithm algorithm : kAlgorithms) {
      core::SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;
      reference = cold.Query(options);
    }
    cold.prepared().DegreeOrder();
    cold.prepared().Cores();
    const double build_ms = build_timer.Micros() / 1000.0;

    const std::string path = "/tmp/nsky_bench_" + spec.name + ".nsnap";
    util::Timer save_timer;
    util::Status saved = persist::Save(cold, path);
    const double save_ms = save_timer.Micros() / 1000.0;
    if (!saved.ok()) {
      std::printf("ERROR: save failed on %s: %s\n", spec.name.c_str(),
                  saved.ToString().c_str());
      return 1;
    }

    util::Timer load_timer;
    auto loaded = persist::Load(path);
    const double load_ms = load_timer.Micros() / 1000.0;
    if (!loaded.ok()) {
      std::printf("ERROR: load failed on %s: %s\n", spec.name.c_str(),
                  loaded.status().ToString().c_str());
      return 1;
    }

    // The restored engine must answer bit-identically, warm, with zero
    // artifact builds -- otherwise the speedup column is comparing wrong
    // answers.
    core::SolverOptions check;
    check.algorithm = kAlgorithms[sizeof(kAlgorithms) /
                                  sizeof(kAlgorithms[0]) - 1];
    check.threads = threads;
    core::SkylineResult warm = loaded.value()->Query(check);
    if (warm.skyline != reference.skyline ||
        warm.stats.aux_peak_bytes != reference.stats.aux_peak_bytes ||
        loaded.value()->prepared().builds() != 0) {
      std::printf("ERROR: restored engine diverged on %s\n",
                  spec.name.c_str());
      return 1;
    }

    auto manifest = persist::Inspect(path);
    if (!manifest.ok()) return 1;
    const double file_mb =
        static_cast<double>(manifest.value().file_bytes) / (1024.0 * 1024.0);
    const double speedup = load_ms > 0 ? build_ms / load_ms : 0.0;
    std::remove(path.c_str());

    table.PrintRow({spec.name, bench::Fmt(build_ms, "%.1f"),
                    bench::Fmt(save_ms, "%.1f"), bench::Fmt(load_ms, "%.1f"),
                    bench::Fmt(speedup, "%.1fx"), bench::Fmt(file_mb, "%.1f"),
                    bench::FmtU(manifest.value().sections.size()),
                    bench::FmtU(warm.skyline.size())});
    report.AddRow()
        .Str("dataset", spec.name)
        .U64("threads", threads)
        .U64("n", n)
        .U64("m", m)
        .F64("build_ms", build_ms)
        .F64("save_ms", save_ms)
        .F64("load_ms", load_ms)
        .F64("speedup", speedup)
        .U64("file_bytes", manifest.value().file_bytes)
        .U64("sections", manifest.value().sections.size())
        .U64("skyline_size", warm.skyline.size())
        .U64("aux_peak_bytes", warm.stats.aux_peak_bytes);
  }

  std::printf(
      "\nExpectation: load_ms a small fraction of build_ms (>=5x speedup on\n"
      "the larger stand-ins: restoring arrays beats recomputing 2-hop\n"
      "neighborhoods), save_ms comparable to load_ms, and bit-identical\n"
      "warm answers with zero artifact builds after restore.\n");
  return report.Write() ? 0 : 1;
}
