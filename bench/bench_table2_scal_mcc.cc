// Table II (Exp-7): scalability of MC-BRB (stand-in: MaxClique) vs
// NeiSkyMC on the LiveJournal stand-in, varying n and rho. Reported in
// microseconds, as in the paper's table.
#include "bench_util.h"
#include "clique/max_clique.h"
#include "clique/nei_sky_mc.h"
#include "datasets/registry.h"
#include "graph/sampling.h"
#include "util/timer.h"

namespace {

void RunSeries(const nsky::graph::Graph& base_graph, bool vary_vertices) {
  using namespace nsky;
  bench::Table table({vary_vertices ? "n%" : "rho%", "n", "MC-BRB_us",
                      "NeiSkyMC_us", "size_equal"},
                     14);
  table.PrintHeader();
  for (int pct : {20, 40, 60, 80, 100}) {
    double frac = pct / 100.0;
    graph::Graph g = vary_vertices
                         ? graph::SampleVertices(base_graph, frac, 55)
                         : graph::SampleEdges(base_graph, frac, 55);
    // The MC-BRB stand-in: the same seeded branch-and-bound engine
    // NeiSkyMC uses, seeded from every vertex (the paper's BaseMCC
    // semantics; see DESIGN.md).
    std::vector<graph::VertexId> all(g.NumVertices());
    for (graph::VertexId u = 0; u < g.NumVertices(); ++u) all[u] = u;
    util::Timer t1;
    auto base = clique::MaxCliqueSeeded(g, all, clique::HeuristicClique(g));
    double base_us = t1.Micros();
    auto sky = clique::NeiSkyMC(g);
    double sky_us = sky.total_seconds * 1e6;
    table.PrintRow({bench::FmtU(pct), bench::FmtU(g.NumVertices()),
                    bench::Fmt(base_us, "%.0f"), bench::Fmt(sky_us, "%.0f"),
                    base.clique.size() == sky.clique.clique.size() ? "yes"
                                                                   : "NO"});
  }
}

}  // namespace

int main() {
  using namespace nsky;
  graph::Graph lj =
      datasets::MakeStandin("livejournal", datasets::StandinScale::kFull)
          .value();

  bench::Banner("Table II (Exp-7)", "MC-BRB vs NeiSkyMC scalability (us)");
  std::printf("-- vary n --\n");
  RunSeries(lj, /*vary_vertices=*/true);
  std::printf("\n-- vary rho --\n");
  RunSeries(lj, /*vary_vertices=*/false);

  std::printf(
      "\nExpectation (paper): the two are close, NeiSkyMC consistently a\n"
      "few percent faster, both growing with n; identical clique sizes.\n");
  return 0;
}
