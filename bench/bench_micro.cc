// Google-benchmark micro suite for the library's kernels: skyline solvers
// across graph sizes, the filter phase, the bloom subset test, BFS and the
// containment joins. Complements the per-figure harnesses with
// statistically-sampled timings.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "centrality/bfs.h"
#include "core/nsky.h"
#include "graph/generators.h"
#include "setjoin/containment_join.h"
#include "setjoin/records.h"

namespace {

using namespace nsky;

graph::Graph SocialGraph(int n) {
  return graph::MakeSocialGraph(static_cast<graph::VertexId>(n), 6.0, 0.6,
                                0.4, 7, 0.3);
}

// Worker count shared by the solver benchmarks ($NSKY_THREADS, default 1);
// google-benchmark owns argv, so the env var is the knob here.
core::SolverOptions SolverOpts(core::Algorithm algorithm) {
  core::SolverOptions options;
  options.algorithm = algorithm;
  options.threads = bench::BenchThreads(0, nullptr);
  return options;
}

void BM_BaseSky(benchmark::State& state) {
  graph::Graph g = SocialGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Solve(g, SolverOpts(core::Algorithm::kBaseSky)).skyline.size());
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_BaseSky)->Arg(1 << 12)->Arg(1 << 14);

void BM_FilterRefineSky(benchmark::State& state) {
  graph::Graph g = SocialGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Solve(g, SolverOpts(core::Algorithm::kFilterRefine))
            .skyline.size());
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_FilterRefineSky)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_FilterPhase(benchmark::State& state) {
  graph::Graph g = SocialGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::FilterPhase(g, SolverOpts(core::Algorithm::kFilterRefine))
            .skyline.size());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_FilterPhase)->Arg(1 << 12)->Arg(1 << 16);

void BM_BloomSubsetTest(benchmark::State& state) {
  graph::Graph g = SocialGraph(1 << 12);
  std::vector<uint8_t> member(g.NumVertices(), 1);
  core::NeighborhoodBlooms blooms(g, member,
                                  static_cast<uint32_t>(state.range(0)));
  graph::VertexId u = 0, w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blooms.SubsetTest(u, w));
    u = (u + 1) & (g.NumVertices() - 1);
    w = (w + 7) & (g.NumVertices() - 1);
  }
}
BENCHMARK(BM_BloomSubsetTest)->Arg(64)->Arg(512)->Arg(4096);

void BM_Bfs(benchmark::State& state) {
  graph::Graph g = SocialGraph(static_cast<int>(state.range(0)));
  std::vector<uint32_t> dist;
  graph::VertexId source = 0;
  for (auto _ : state) {
    centrality::BfsFrom(g, source, &dist);
    benchmark::DoNotOptimize(dist.data());
    source = (source + 1) % g.NumVertices();
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 15);

void BM_EngineWarmFilterRefine(benchmark::State& state) {
  // Steady-state serving: artifacts cached, scratch pooled. Compare against
  // BM_FilterRefineSky at the same size for the cold/warm gap.
  core::Engine engine{SocialGraph(static_cast<int>(state.range(0)))};
  core::SolverOptions options = SolverOpts(core::Algorithm::kFilterRefine);
  core::SkylineResult result;
  engine.Query(options);  // warm up the artifact caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.QueryInto(options, util::ExecutionContext::Unlimited(),
                         &result));
  }
  state.SetItemsProcessed(state.iterations() * engine.graph().NumVertices());
}
BENCHMARK(BM_EngineWarmFilterRefine)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_EngineWarmBase2Hop(benchmark::State& state) {
  // The biggest artifact win: the cached 2-hop materialization dominates
  // the cold run.
  core::Engine engine{SocialGraph(static_cast<int>(state.range(0)))};
  core::SolverOptions options = SolverOpts(core::Algorithm::kBase2Hop);
  core::SkylineResult result;
  engine.Query(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.QueryInto(options, util::ExecutionContext::Unlimited(),
                         &result));
  }
  state.SetItemsProcessed(state.iterations() * engine.graph().NumVertices());
}
BENCHMARK(BM_EngineWarmBase2Hop)->Arg(1 << 12)->Arg(1 << 14);

void BM_ContainmentJoinLC(benchmark::State& state) {
  setjoin::RecordSet data = setjoin::RandomRecords(2000, 4000, 2, 12, 3);
  setjoin::RecordSet queries = setjoin::RandomRecords(2000, 1000, 2, 5, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setjoin::ListCrosscuttingJoin(queries, data).size());
  }
}
BENCHMARK(BM_ContainmentJoinLC);

void BM_ContainmentJoinII(benchmark::State& state) {
  setjoin::RecordSet data = setjoin::RandomRecords(2000, 4000, 2, 12, 3);
  setjoin::RecordSet queries = setjoin::RandomRecords(2000, 1000, 2, 5, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setjoin::InvertedIndexJoin(queries, data).size());
  }
}
BENCHMARK(BM_ContainmentJoinII);

}  // namespace

BENCHMARK_MAIN();
