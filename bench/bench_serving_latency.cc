// Serving latency trajectory: per-query percentiles and QPS of a warm
// core::Engine on Table-1 stand-in graphs.
//
// This is the first perf-trajectory bench: its report is committed to the
// repo as BENCH_serving.json so successive revisions can be diffed for
// serving-path regressions. For each dataset x algorithm it measures one
// cold query (artifact builds included), then a warm loop timed per query
// (exact p50/p99 from the raw samples, plus QPS) and a QueryBatch pass.
// The engine's own latency histogram (StatsSnapshot) is sampled alongside,
// so the log-linear EstimateQuantile numbers can be cross-checked against
// the exact nearest-rank percentiles in one report.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Serving latency",
                "warm Engine::Query p50/p99 + QPS, stand-in datasets");

  const uint32_t threads = bench::BenchThreads(argc, argv);
  constexpr int kWarmQueries = 50;
  constexpr int kBatchSize = 16;
  constexpr core::Algorithm kAlgorithms[] = {core::Algorithm::kFilterRefine,
                                             core::Algorithm::kBase2Hop};

  bench::JsonReporter report("bench_serving_latency", "BENCH_serving");
  bench::Table table({"dataset", "algo", "cold_us", "p50_us", "p99_us",
                      "qps", "batch_qps", "skyline"},
                     12);
  table.PrintHeader();

  for (const auto& spec : datasets::AllStandins()) {
    graph::Graph g =
        datasets::MakeStandin(spec, datasets::StandinScale::kSmall);
    for (core::Algorithm algorithm : kAlgorithms) {
      core::SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;

      core::Engine engine{graph::Graph(g)};
      util::Timer cold_timer;
      core::SkylineResult cold = engine.Query(options);
      const double cold_us = cold_timer.Micros();

      std::vector<double> warm_us;
      warm_us.reserve(kWarmQueries);
      util::Timer loop_timer;
      for (int i = 0; i < kWarmQueries; ++i) {
        util::Timer query_timer;
        core::SkylineResult warm = engine.Query(options);
        warm_us.push_back(query_timer.Micros());
        if (warm.skyline != cold.skyline ||
            warm.stats.aux_peak_bytes != cold.stats.aux_peak_bytes) {
          std::printf("ERROR: warm result diverged on %s\n",
                      spec.name.c_str());
          return 1;
        }
      }
      const double loop_s = loop_timer.Seconds();
      const double qps = loop_s > 0 ? kWarmQueries / loop_s : 0.0;
      const double p50 = bench::Percentile(warm_us, 0.50);
      const double p99 = bench::Percentile(warm_us, 0.99);

      std::vector<core::SolverOptions> batch(kBatchSize, options);
      util::Timer batch_timer;
      std::vector<core::SkylineResult> batch_results =
          engine.QueryBatch(batch);
      const double batch_s = batch_timer.Seconds();
      const double batch_qps = batch_s > 0 ? kBatchSize / batch_s : 0.0;
      if (batch_results.back().skyline != cold.skyline) {
        std::printf("ERROR: batch result diverged on %s\n", spec.name.c_str());
        return 1;
      }

      // The engine's own view of the same distribution (bucketed estimate).
      core::EngineStats stats = engine.StatsSnapshot();
      double engine_p50 = 0.0, engine_p99 = 0.0;
      for (const core::EngineStats::AlgorithmLatency& al : stats.latency) {
        if (al.algorithm == core::AlgorithmName(algorithm)) {
          engine_p50 = util::metrics::EstimateQuantile(al.latency_us, 0.50);
          engine_p99 = util::metrics::EstimateQuantile(al.latency_us, 0.99);
        }
      }

      table.PrintRow({spec.name, core::AlgorithmName(algorithm),
                      bench::Fmt(cold_us, "%.0f"), bench::Fmt(p50, "%.0f"),
                      bench::Fmt(p99, "%.0f"), bench::Fmt(qps, "%.0f"),
                      bench::Fmt(batch_qps, "%.0f"),
                      bench::FmtU(cold.skyline.size())});
      report.AddRow()
          .Str("dataset", spec.name)
          .Str("algo", core::AlgorithmName(algorithm))
          .U64("threads", threads)
          .U64("n", g.NumVertices())
          .U64("m", g.NumEdges())
          .F64("cold_us", cold_us)
          .F64("warm_p50_us", p50)
          .F64("warm_p99_us", p99)
          .F64("warm_qps", qps)
          .F64("batch_qps", batch_qps)
          .F64("engine_p50_us", engine_p50)
          .F64("engine_p99_us", engine_p99)
          .U64("warm_queries", kWarmQueries)
          .U64("skyline_size", cold.skyline.size())
          .U64("aux_peak_bytes", cold.stats.aux_peak_bytes);
    }
  }

  std::printf(
      "\nExpectation: warm p50 well under the cold query (no artifact\n"
      "builds), p99 close to p50 (allocation-free warm path), and the\n"
      "engine's bucketed engine_p50/p99 within ~2x of the exact\n"
      "nearest-rank percentiles.\n");
  return report.Write() ? 0 : 1;
}
