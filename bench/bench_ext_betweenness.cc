// Extension bench (beyond the paper): group betweenness maximization with
// skyline pruning -- the application the paper conjectures in Sec. IV-D.
// Verifies the conjecture end-to-end on social-graph stand-ins: NeiSkyGB
// reaches the same score as the unpruned greedy with fewer evaluations.
#include <cmath>

#include "bench_util.h"
#include "centrality/betweenness.h"
#include "graph/generators.h"

int main() {
  using namespace nsky;
  bench::Banner("Extension: group betweenness",
                "greedy GBM with and without skyline pruning (conjectured in "
                "Sec. IV-D)");

  bench::Table table({"n", "k", "Base_s", "NeiSky_s", "speedup", "base_evals",
                      "sky_evals", "score_equal"},
                     12);
  table.PrintHeader();
  for (graph::VertexId n : {120u, 250u, 400u}) {
    graph::Graph g = graph::MakeSocialGraph(n, 5.0, 0.55, 0.4, 11, 0.25);
    for (uint32_t k : {2u, 3u}) {
      auto base = centrality::GreedyGroupBetweenness(g, k);
      auto sky = centrality::NeiSkyGB(g, k);
      bool equal = std::abs(base.score - sky.score) <=
                   1e-9 * std::max(1.0, std::abs(base.score));
      table.PrintRow({bench::FmtU(n), bench::FmtU(k),
                      bench::FmtSecs(base.seconds), bench::FmtSecs(sky.seconds),
                      bench::Fmt(base.seconds / sky.seconds, "%.2f"),
                      bench::FmtU(base.gain_calls), bench::FmtU(sky.gain_calls),
                      equal ? "yes" : "NO"});
    }
  }
  std::printf(
      "\nExpectation: identical scores with a speedup tracking the pool\n"
      "shrinkage n -> |R|, supporting the paper's conjecture that the\n"
      "pruning extends to shortest-path-based group centralities beyond\n"
      "closeness and harmonic.\n");
  return 0;
}
