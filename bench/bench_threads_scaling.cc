// Thread-scaling bench for the parallel solver engine (core/solver.h):
// runs each algorithm on a Chung-Lu power-law graph at threads = 1, 2, 4, 8
// and reports wall time and speedup over the sequential run. The skyline is
// bit-identical at every thread count (checked here too -- a mismatch is
// fatal), so the only thing that may change is wall time.
//
// Size defaults to n = 2^17 so the bench finishes in seconds; pass
// "--n <vertices>" (e.g. 1048576 for the 2^20 acceptance run) to scale up.
// The thread list can be extended with "--max-threads N". On a single-core
// host the speedup column will hover around 1.0 (or slightly below, the
// pool overhead); the point of the bench is to measure, not to assume.
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

uint64_t ArgU64(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      long long v = std::strtoll(argv[i + 1], nullptr, 10);
      if (v > 0) return static_cast<uint64_t>(v);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Threads scaling",
                "parallel solver speedup on a Chung-Lu power-law graph");

  const auto n = static_cast<graph::VertexId>(
      ArgU64(argc, argv, "--n", 1u << 17));
  const auto max_threads =
      static_cast<uint32_t>(ArgU64(argc, argv, "--max-threads", 8));
  graph::Graph g = graph::MakeChungLuPowerLaw(n, 2.6, 12, 7);
  std::printf("graph: Chung-Lu power-law n=%u m=%llu dmax=%u (%u hw threads)\n\n",
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()),
              g.MaxDegree(), util::ThreadPool::HardwareThreads());

  const core::Algorithm algorithms[] = {
      core::Algorithm::kFilterRefine, core::Algorithm::kBaseCSet,
      core::Algorithm::kBase2Hop, core::Algorithm::kBaseSky};

  bench::Table table({"algorithm", "threads", "time_s", "speedup"}, 15);
  table.PrintHeader();
  bench::JsonReporter report("bench_threads_scaling");
  for (core::Algorithm algorithm : algorithms) {
    core::SolverOptions options;
    options.algorithm = algorithm;
    std::vector<graph::VertexId> baseline_skyline;
    double baseline_s = 0;
    for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
      options.threads = threads;
      util::Timer timer;
      core::SkylineResult r = core::Solve(g, options);
      double seconds = timer.Seconds();
      if (threads == 1) {
        baseline_skyline = r.skyline;
        baseline_s = seconds;
      } else if (r.skyline != baseline_skyline) {
        std::fprintf(stderr, "FATAL: %s result differs at threads=%u\n",
                     core::AlgorithmName(algorithm), threads);
        return 1;
      }
      double speedup = seconds > 0 ? baseline_s / seconds : 1.0;
      table.PrintRow({core::AlgorithmName(algorithm), bench::FmtU(threads),
                      bench::FmtSecs(seconds), bench::Fmt(speedup, "%.2f")});
      report.AddRow()
          .Str("algorithm", core::AlgorithmName(algorithm))
          .U64("threads", r.stats.threads)
          .U64("num_vertices", g.NumVertices())
          .U64("num_edges", g.NumEdges())
          .U64("skyline_size", r.skyline.size())
          .F64("seconds", seconds)
          .F64("speedup", speedup);
    }
  }
  report.Write();
  std::printf(
      "\nExpectation: near-linear speedup for the refine-heavy algorithms up\n"
      "to the physical core count (>= 3x at 8 threads on an 8-core host);\n"
      "flat (~1.0) on a single-core host. Identical skylines at every\n"
      "thread count is asserted above, not assumed.\n");
  return 0;
}
