// Fig. 4 (Exp-2): memory usage of the five skyline computation algorithms.
// Reported as the deterministic auxiliary-structure footprint of each
// algorithm (util::MemoryTally ledger) next to the CSR graph size, which is
// the apples-to-apples analogue of the paper's per-process numbers.
#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "setjoin/skyline_via_join.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Fig. 4 (Exp-2)",
                "memory usage of skyline computation algorithms");
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);

  const char* names[] = {"notredame", "youtube", "wikitalk", "flixster",
                         "dblp"};
  bench::Table table({"dataset", "graph_size", "LC-Join", "BaseSky",
                      "Base2Hop", "BaseCSet", "FilterRefine"},
                     14);
  table.PrintHeader();
  for (const char* name : names) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kFull).value();
    auto lc = setjoin::SkylineViaJoin(g);
    auto bs = core::Solve(g, bench::With(options, core::Algorithm::kBaseSky));
    auto b2 = core::Solve(g, bench::With(options, core::Algorithm::kBase2Hop));
    auto bc = core::Solve(g, bench::With(options, core::Algorithm::kBaseCSet));
    auto fr = core::Solve(g, bench::With(options, core::Algorithm::kFilterRefine));
    table.PrintRow({name, util::HumanBytes(g.MemoryBytes()),
                    util::HumanBytes(lc.stats.aux_peak_bytes),
                    util::HumanBytes(bs.stats.aux_peak_bytes),
                    util::HumanBytes(b2.stats.aux_peak_bytes),
                    util::HumanBytes(bc.stats.aux_peak_bytes),
                    util::HumanBytes(fr.stats.aux_peak_bytes)});
  }
  std::printf(
      "\nExpectation (paper): Base2Hop largest everywhere (materialized\n"
      "2-hop lists); BaseSky/BaseCSet barely above the graph size; LC-Join\n"
      "above the graph size (inverted index); FilterRefineSky in between\n"
      "(|C| bloom filters), growing with dmax.\n");
  return 0;
}
