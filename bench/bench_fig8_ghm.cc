// Fig. 8 (Exp-5): group harmonic maximization -- Greedy-H stand-in (BaseGH)
// vs NeiSkyGH, varying k, on all five stand-in datasets (small scale,
// k scaled as in Fig. 7).
#include "bench_util.h"
#include "centrality/greedy.h"
#include "datasets/registry.h"

int main() {
  using namespace nsky;
  bench::Banner("Fig. 8 (Exp-5)",
                "Greedy-H (BaseGH) vs NeiSkyGH, group harmonic, vary k (s)");

  const char* names[] = {"notredame", "youtube", "wikitalk", "flixster",
                         "dblp"};
  bench::Table table({"dataset", "k", "BaseGH_s", "NeiSkyGH_s", "speedup",
                      "base_gains", "sky_gains", "score_equal"},
                     12);
  table.PrintHeader();
  for (const char* name : names) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kSmall).value();
    for (uint32_t k : {5u, 10u, 15u, 20u, 25u, 30u}) {
      centrality::GreedyResult base = centrality::BaseGH(g, k);
      centrality::GreedyResult sky = centrality::NeiSkyGH(g, k);
      bool equal = std::abs(base.score - sky.score) <=
                   1e-9 * std::max(1.0, std::abs(base.score));
      table.PrintRow({name, bench::FmtU(k), bench::FmtSecs(base.seconds),
                      bench::FmtSecs(sky.seconds),
                      bench::Fmt(base.seconds / sky.seconds, "%.2f"),
                      bench::FmtU(base.gain_calls), bench::FmtU(sky.gain_calls),
                      equal ? "yes" : "NO"});
    }
  }
  std::printf(
      "\nExpectation (paper): NeiSkyGH ~1.4-1.85x faster than Greedy-H at\n"
      "every k, identical scores, runtime growing with k.\n");
  return 0;
}
