// Fig. 5 (Exp-3): sizes of the neighborhood skyline R, the candidate set C
// and the vertex set V on the five stand-in datasets.
#include "bench_util.h"
#include "core/filter_phase.h"
#include "core/solver.h"
#include "datasets/registry.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Fig. 5 (Exp-3)", "|R| vs |C| vs |V| on real-life stand-ins");
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);

  const char* names[] = {"notredame", "youtube", "wikitalk", "flixster",
                         "dblp"};
  bench::Table table({"dataset", "skyline|R|", "candidates|C|", "total|V|",
                      "R/V", "C/V"},
                     15);
  table.PrintHeader();
  bench::JsonReporter report("bench_fig5_sizes");
  for (const char* name : names) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kFull).value();
    uint64_t r = core::Solve(g, options).skyline.size();
    uint64_t c = core::FilterPhase(g, options).skyline.size();
    uint64_t v = g.NumVertices();
    table.PrintRow({name, bench::FmtU(r), bench::FmtU(c), bench::FmtU(v),
                    bench::Fmt(static_cast<double>(r) / v, "%.3f"),
                    bench::Fmt(static_cast<double>(c) / v, "%.3f")});
    report.AddRow()
        .Str("dataset", name)
        .U64("skyline_size", r)
        .U64("candidate_count", c)
        .U64("num_vertices", v)
        .F64("r_over_v", static_cast<double>(r) / v)
        .F64("c_over_v", static_cast<double>(c) / v);
  }
  report.Write();
  std::printf(
      "\nExpectation (paper): R < C << V on every power-law dataset, with a\n"
      "clear gap between |R| and |C| (e.g. WikiTalk: 194k vs 531k vs 2.39M).\n");
  return 0;
}
