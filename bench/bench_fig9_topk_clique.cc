// Fig. 9 (Exp-6): finding k maximum cliques -- BaseTopkMCC vs
// NeiSkyTopkMCC on the Pokec and Orkut stand-ins, k in {1,3,5,7,9}.
// Runtimes include the skyline computation, as in the paper.
#include "bench_util.h"
#include "clique/topk.h"
#include "datasets/registry.h"

int main() {
  using namespace nsky;
  bench::Banner("Fig. 9 (Exp-6)",
                "BaseTopkMCC vs NeiSkyTopkMCC, k maximum cliques (s)");

  bench::Table table({"dataset", "k", "BaseTopk_s", "NeiSkyTopk_s", "speedup",
                      "sizes_equal"},
                     14);
  table.PrintHeader();
  for (const char* name : {"pokec", "orkut"}) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kSmall).value();
    for (uint32_t k : {1u, 3u, 5u, 7u, 9u}) {
      auto base = clique::BaseTopkMCC(g, k);
      auto sky = clique::NeiSkyTopkMCC(g, k);
      bool equal = base.cliques.size() == sky.cliques.size();
      for (size_t i = 0; equal && i < base.cliques.size(); ++i) {
        equal = base.cliques[i].size() == sky.cliques[i].size();
      }
      table.PrintRow({name, bench::FmtU(k), bench::FmtSecs(base.total_seconds),
                      bench::FmtSecs(sky.total_seconds),
                      bench::Fmt(base.total_seconds / sky.total_seconds,
                                 "%.2f"),
                      equal ? "yes" : "NO"});
    }
  }
  std::printf(
      "\nExpectation (paper): NeiSkyTopkMCC slightly slower at k = 1 (it\n"
      "pays for the skyline first) and faster for k >= 2, with identical\n"
      "clique sizes; both grow with k.\n");
  return 0;
}
