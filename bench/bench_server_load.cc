// Server load trajectory: throughput and latency of the HTTP serving stack
// measured through real loopback sockets.
//
// This is the transport-inclusive companion of bench_serving_latency: where
// that bench times core::Engine::Query directly, this one starts the full
// src/server stack (listener, session workers, HTTP parsing, admission
// control) and drives it with the keep-alive HttpClient, so the reported
// p50/p99 include everything a network caller pays. Two phases per
// dataset:
//
//   steady    client threads <= max_inflight; every request is admitted.
//             Reports QPS and exact per-request p50/p99.
//   overload  max_inflight=1 with many clients; most requests shed with
//             429. Reports the shed rate and the p50 of the (cheap) shed
//             responses -- the overload behavior the admission controller
//             promises: fast deterministic rejection, not queueing.
//
// The report is committed as BENCH_server.json so revisions can be diffed
// for serving-path regressions.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datasets/registry.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "util/timer.h"

namespace {

using namespace nsky;

struct LoadResult {
  std::vector<double> latencies_us;  // per-request round-trip times
  uint64_t ok = 0;                   // 200 responses
  uint64_t shed = 0;                 // 429 responses
  uint64_t errors = 0;               // anything else (should stay 0)
  double wall_s = 0.0;
};

// `clients` keep-alive connections, each issuing `requests` GETs of
// `target` back to back.
LoadResult DriveLoad(uint16_t port, const std::string& target, int clients,
                     int requests) {
  LoadResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  util::Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      server::HttpClient client(port);
      std::vector<double> local_us;
      local_us.reserve(static_cast<size_t>(requests));
      uint64_t ok = 0, shed = 0, errors = 0;
      for (int i = 0; i < requests; ++i) {
        util::Timer timer;
        auto r = client.Get(target);
        local_us.push_back(timer.Micros());
        if (!r.ok()) {
          ++errors;
        } else if (r.value().status == 200) {
          ++ok;
        } else if (r.value().status == 429) {
          ++shed;
        } else {
          ++errors;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_us.insert(result.latencies_us.end(), local_us.begin(),
                                 local_us.end());
      result.ok += ok;
      result.shed += shed;
      result.errors += errors;
      (void)c;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_s = wall.Seconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Server load",
                "loopback HTTP throughput + p50/p99, steady and overload");

  const uint32_t threads = bench::BenchThreads(argc, argv);
  // Table-1 stand-ins covering the small-scale size range.
  const char* kDatasets[] = {"notredame", "dblp", "youtube", "wikitalk",
                             "flixster"};
  const std::string kTarget =
      "/v1/skyline?algo=filter-refine&threads=" + std::to_string(threads);
  constexpr int kSteadyClients = 4;
  constexpr int kSteadyRequests = 40;
  constexpr int kOverloadClients = 8;
  constexpr int kOverloadRequests = 25;

  bench::JsonReporter report("bench_server_load", "BENCH_server");
  bench::Table table({"dataset", "phase", "qps", "p50_us", "p99_us",
                      "served", "shed", "shed_rate"},
                     12);
  table.PrintHeader();

  for (const char* name : kDatasets) {
    auto g = datasets::MakeStandin(name, datasets::StandinScale::kSmall);
    if (!g.ok()) {
      std::printf("ERROR: standin %s: %s\n", name, g.status().ToString().c_str());
      return 1;
    }
    const uint64_t n = g.value().NumVertices();
    const uint64_t m = g.value().NumEdges();

    // --- steady phase: capacity above the client count, zero shedding ---
    {
      server::ServiceOptions service_options;
      service_options.max_inflight = kSteadyClients;
      server::SkylineService service(std::move(g.value()), service_options);
      server::ServerOptions server_options;
      server_options.session_threads = kSteadyClients;
      server::Server server(&service, server_options);
      if (auto s = server.Listen(); !s.ok()) {
        std::printf("ERROR: listen: %s\n", s.ToString().c_str());
        return 1;
      }
      std::thread serve([&] { server.Serve(); });
      // Warm the artifact cache so the measured loop is the steady state.
      (void)server::HttpGet(server.port(), kTarget);

      LoadResult steady = DriveLoad(server.port(), kTarget, kSteadyClients,
                                    kSteadyRequests);
      server.Shutdown();
      serve.join();
      if (steady.errors > 0 || steady.shed > 0) {
        std::printf("ERROR: steady phase on %s: %llu errors, %llu shed\n",
                    name, static_cast<unsigned long long>(steady.errors),
                    static_cast<unsigned long long>(steady.shed));
        return 1;
      }
      const double qps =
          steady.wall_s > 0 ? static_cast<double>(steady.ok) / steady.wall_s
                            : 0.0;
      const double p50 = bench::Percentile(steady.latencies_us, 0.50);
      const double p99 = bench::Percentile(steady.latencies_us, 0.99);
      table.PrintRow({name, "steady", bench::Fmt(qps, "%.0f"),
                      bench::Fmt(p50, "%.0f"), bench::Fmt(p99, "%.0f"),
                      bench::FmtU(steady.ok), bench::FmtU(steady.shed),
                      "0.00"});
      report.AddRow()
          .Str("dataset", name)
          .Str("phase", "steady")
          .U64("n", n)
          .U64("m", m)
          .U64("threads", threads)
          .U64("clients", kSteadyClients)
          .U64("requests", static_cast<uint64_t>(kSteadyClients) *
                               kSteadyRequests)
          .F64("qps", qps)
          .F64("p50_us", p50)
          .F64("p99_us", p99)
          .U64("served", steady.ok)
          .U64("shed", steady.shed)
          .F64("shed_rate", 0.0);
    }

    // --- overload phase: capacity 1, many clients; shedding expected ---
    {
      auto g2 = datasets::MakeStandin(name, datasets::StandinScale::kSmall);
      server::ServiceOptions service_options;
      service_options.max_inflight = 1;
      server::SkylineService service(std::move(g2.value()), service_options);
      server::ServerOptions server_options;
      server_options.session_threads = kOverloadClients;
      server::Server server(&service, server_options);
      if (auto s = server.Listen(); !s.ok()) {
        std::printf("ERROR: listen: %s\n", s.ToString().c_str());
        return 1;
      }
      std::thread serve([&] { server.Serve(); });
      (void)server::HttpGet(server.port(), kTarget);

      LoadResult overload = DriveLoad(server.port(), kTarget,
                                      kOverloadClients, kOverloadRequests);
      server.Shutdown();
      serve.join();
      if (overload.errors > 0) {
        std::printf("ERROR: overload phase on %s: %llu errors\n", name,
                    static_cast<unsigned long long>(overload.errors));
        return 1;
      }
      const uint64_t total = overload.ok + overload.shed;
      const double qps =
          overload.wall_s > 0 ? static_cast<double>(total) / overload.wall_s
                              : 0.0;
      const double shed_rate =
          total > 0 ? static_cast<double>(overload.shed) /
                          static_cast<double>(total)
                    : 0.0;
      const double p50 = bench::Percentile(overload.latencies_us, 0.50);
      const double p99 = bench::Percentile(overload.latencies_us, 0.99);
      table.PrintRow({name, "overload", bench::Fmt(qps, "%.0f"),
                      bench::Fmt(p50, "%.0f"), bench::Fmt(p99, "%.0f"),
                      bench::FmtU(overload.ok), bench::FmtU(overload.shed),
                      bench::Fmt(shed_rate, "%.2f")});
      report.AddRow()
          .Str("dataset", name)
          .Str("phase", "overload")
          .U64("n", n)
          .U64("m", m)
          .U64("threads", threads)
          .U64("clients", kOverloadClients)
          .U64("requests", static_cast<uint64_t>(kOverloadClients) *
                               kOverloadRequests)
          .F64("qps", qps)
          .F64("p50_us", p50)
          .F64("p99_us", p99)
          .U64("served", overload.ok)
          .U64("shed", overload.shed)
          .F64("shed_rate", shed_rate);
    }
  }

  std::printf(
      "\nExpectation: steady p50 within ~2x of bench_serving_latency's warm\n"
      "p50 (the HTTP layer adds parsing + one loopback round trip), zero\n"
      "shedding in the steady phase, and a high shed rate under overload\n"
      "with shed responses far cheaper than served ones (the 429 path never\n"
      "touches the engine).\n");
  return report.Write() ? 0 : 1;
}
