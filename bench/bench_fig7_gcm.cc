// Fig. 7 (Exp-4): group closeness maximization -- Greedy++ stand-in
// (BaseGC) vs NeiSkyGC, varying the group size k, on all five stand-in
// datasets (small scale; the greedy baseline is O(k n) pruned-BFS gain
// evaluations, see DESIGN.md).
// k is scaled from the paper's {50..300} to {5..30} to match the 1/10-scale
// stand-ins.
#include "bench_util.h"
#include "centrality/greedy.h"
#include "datasets/registry.h"

int main() {
  using namespace nsky;
  bench::Banner("Fig. 7 (Exp-4)",
                "Greedy++ (BaseGC) vs NeiSkyGC, group closeness, vary k (s)");

  const char* names[] = {"notredame", "youtube", "wikitalk", "flixster",
                         "dblp"};
  bench::Table table({"dataset", "k", "BaseGC_s", "NeiSkyGC_s", "speedup",
                      "base_gains", "sky_gains", "score_equal"},
                     12);
  table.PrintHeader();
  for (const char* name : names) {
    graph::Graph g =
        datasets::MakeStandin(name, datasets::StandinScale::kSmall).value();
    for (uint32_t k : {5u, 10u, 15u, 20u, 25u, 30u}) {
      centrality::GreedyResult base = centrality::BaseGC(g, k);
      centrality::GreedyResult sky = centrality::NeiSkyGC(g, k);
      bool equal = std::abs(base.score - sky.score) <=
                   1e-9 * std::max(1.0, std::abs(base.score));
      table.PrintRow({name, bench::FmtU(k), bench::FmtSecs(base.seconds),
                      bench::FmtSecs(sky.seconds),
                      bench::Fmt(base.seconds / sky.seconds, "%.2f"),
                      bench::FmtU(base.gain_calls), bench::FmtU(sky.gain_calls),
                      equal ? "yes" : "NO"});
    }
  }
  std::printf(
      "\nExpectation (paper): NeiSkyGC ~1.35-2.5x faster than the base\n"
      "greedy at every k, with identical achieved scores; both runtimes\n"
      "grow with k.\n");
  return 0;
}
