// Fig. 11 (Exp-7): scalability of Greedy++ (BaseGC) vs NeiSkyGC on the
// LiveJournal stand-in, varying n and rho (k = 10).
#include "bench_util.h"
#include "centrality/greedy.h"
#include "datasets/registry.h"
#include "graph/sampling.h"

namespace {

void RunSeries(const nsky::graph::Graph& base_graph, bool vary_vertices) {
  using namespace nsky;
  bench::Table table({vary_vertices ? "n%" : "rho%", "n", "BaseGC_s",
                      "NeiSkyGC_s", "speedup", "score_equal"},
                     14);
  table.PrintHeader();
  for (int pct : {20, 40, 60, 80, 100}) {
    double frac = pct / 100.0;
    graph::Graph g = vary_vertices
                         ? graph::SampleVertices(base_graph, frac, 33)
                         : graph::SampleEdges(base_graph, frac, 33);
    auto base = centrality::BaseGC(g, 10);
    auto sky = centrality::NeiSkyGC(g, 10);
    bool equal = std::abs(base.score - sky.score) <=
                 1e-9 * std::max(1.0, std::abs(base.score));
    table.PrintRow({bench::FmtU(pct), bench::FmtU(g.NumVertices()),
                    bench::FmtSecs(base.seconds), bench::FmtSecs(sky.seconds),
                    bench::Fmt(base.seconds / sky.seconds, "%.2f"),
                    equal ? "yes" : "NO"});
  }
}

}  // namespace

int main() {
  using namespace nsky;
  graph::Graph lj =
      datasets::MakeStandin("livejournal", datasets::StandinScale::kSmall)
          .value();

  bench::Banner("Fig. 11(a) (Exp-7)", "GCM scalability, vary n (k = 10)");
  RunSeries(lj, /*vary_vertices=*/true);
  std::printf("\n");
  bench::Banner("Fig. 11(b) (Exp-7)", "GCM scalability, vary rho (k = 10)");
  RunSeries(lj, /*vary_vertices=*/false);

  std::printf(
      "\nExpectation (paper): NeiSkyGC below Greedy++ at every scale, with\n"
      "a smoother growth curve.\n");
  return 0;
}
