// Fig. 13: case studies on the Karate club (exact) and the Madrid train
// bombing contact network (surrogate, see DESIGN.md). Prints the skyline
// members and the |R| / |V| ratios the paper highlights (44% and 31%).
#include <algorithm>

#include "bench_util.h"
#include "core/filter_refine_sky.h"
#include "datasets/bombing.h"
#include "datasets/karate.h"

namespace {

void CaseStudy(const char* name, const nsky::graph::Graph& g) {
  using namespace nsky;
  core::SkylineResult r = core::FilterRefineSky(g);
  std::printf("%s: n = %u, m = %llu, |R| = %zu (%.0f%%)\n", name,
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()),
              r.skyline.size(),
              100.0 * static_cast<double>(r.skyline.size()) / g.NumVertices());
  std::printf("  skyline vertices:");
  for (graph::VertexId u : r.skyline) std::printf(" %u", u);
  std::printf("\n");
  // Degree structure of dominated vs skyline vertices.
  double sky_deg = 0, dom_deg = 0;
  uint64_t dom_count = 0;
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (r.dominator[u] == u) {
      sky_deg += g.Degree(u);
    } else {
      dom_deg += g.Degree(u);
      ++dom_count;
    }
  }
  std::printf("  avg degree: skyline %.2f vs dominated %.2f\n",
              sky_deg / static_cast<double>(r.skyline.size()),
              dom_count == 0 ? 0.0 : dom_deg / static_cast<double>(dom_count));
}

}  // namespace

int main() {
  using namespace nsky;
  bench::Banner("Fig. 13", "case studies: Karate (exact) and Bombing "
                           "(surrogate)");
  CaseStudy("Karate", datasets::MakeKarateClub());
  std::printf("\n");
  CaseStudy("Bombing", datasets::MakeBombingSurrogate());
  std::printf(
      "\nExpectation (paper): Karate ~44%% skyline (15 of 34), Bombing\n"
      "~31%% (20 of 64); low-degree vertices are the dominated ones.\n");
  return 0;
}
