// Fig. 13: case studies on the Karate club (exact) and the Madrid train
// bombing contact network (surrogate, see DESIGN.md). Prints the skyline
// members and the |R| / |V| ratios the paper highlights (44% and 31%).
#include <algorithm>

#include "bench_util.h"
#include "core/solver.h"
#include "datasets/bombing.h"
#include "datasets/karate.h"

namespace {

void CaseStudy(const char* name, const nsky::graph::Graph& g,
               const nsky::core::SolverOptions& options) {
  using namespace nsky;
  core::SkylineResult r = core::Solve(g, options);
  std::printf("%s: n = %u, m = %llu, |R| = %zu (%.0f%%)\n", name,
              g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()),
              r.skyline.size(),
              100.0 * static_cast<double>(r.skyline.size()) / g.NumVertices());
  std::printf("  skyline vertices:");
  for (graph::VertexId u : r.skyline) std::printf(" %u", u);
  std::printf("\n");
  // Degree structure of dominated vs skyline vertices.
  double sky_deg = 0, dom_deg = 0;
  uint64_t dom_count = 0;
  for (graph::VertexId u = 0; u < g.NumVertices(); ++u) {
    if (r.dominator[u] == u) {
      sky_deg += g.Degree(u);
    } else {
      dom_deg += g.Degree(u);
      ++dom_count;
    }
  }
  std::printf("  avg degree: skyline %.2f vs dominated %.2f\n",
              sky_deg / static_cast<double>(r.skyline.size()),
              dom_count == 0 ? 0.0 : dom_deg / static_cast<double>(dom_count));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nsky;
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);
  bench::Banner("Fig. 13", "case studies: Karate (exact) and Bombing "
                           "(surrogate)");
  CaseStudy("Karate", datasets::MakeKarateClub(), options);
  std::printf("\n");
  CaseStudy("Bombing", datasets::MakeBombingSurrogate(), options);
  std::printf(
      "\nExpectation (paper): Karate ~44%% skyline (15 of 34), Bombing\n"
      "~31%% (20 of 64); low-degree vertices are the dominated ones.\n");
  return 0;
}
