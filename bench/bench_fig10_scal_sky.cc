// Fig. 10 (Exp-7): scalability of BaseSky vs FilterRefineSky on the
// LiveJournal stand-in, varying (a) the number of vertices n and (b) the
// density rho from 20% to 100%.
#include "bench_util.h"
#include "core/solver.h"
#include "datasets/registry.h"
#include "graph/sampling.h"
#include "util/timer.h"

namespace {

void RunSeries(const nsky::graph::Graph& base_graph, bool vary_vertices,
               const nsky::core::SolverOptions& options) {
  using namespace nsky;
  bench::Table table({vary_vertices ? "n%" : "rho%", "n", "m", "BaseSky_s",
                      "FilterRefine_s", "speedup"},
                     14);
  table.PrintHeader();
  for (int pct : {20, 40, 60, 80, 100}) {
    double frac = pct / 100.0;
    graph::Graph g = vary_vertices
                         ? graph::SampleVertices(base_graph, frac, 77)
                         : graph::SampleEdges(base_graph, frac, 77);
    util::Timer t1;
    auto bs = core::Solve(g, bench::With(options, core::Algorithm::kBaseSky));
    double bs_s = t1.Seconds();
    util::Timer t2;
    auto fr =
        core::Solve(g, bench::With(options, core::Algorithm::kFilterRefine));
    double fr_s = t2.Seconds();
    if (bs.skyline != fr.skyline) {
      std::fprintf(stderr, "FATAL: solvers disagree at %d%%\n", pct);
      std::exit(1);
    }
    table.PrintRow({bench::FmtU(pct), bench::FmtU(g.NumVertices()),
                    bench::FmtU(g.NumEdges()), bench::FmtSecs(bs_s),
                    bench::FmtSecs(fr_s), bench::Fmt(bs_s / fr_s, "%.2f")});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nsky;
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);
  graph::Graph lj =
      datasets::MakeStandin("livejournal", datasets::StandinScale::kFull)
          .value();

  bench::Banner("Fig. 10(a) (Exp-7)",
                "scalability on LiveJournal stand-in, vary n");
  RunSeries(lj, /*vary_vertices=*/true, options);
  std::printf("\n");
  bench::Banner("Fig. 10(b) (Exp-7)",
                "scalability on LiveJournal stand-in, vary rho");
  RunSeries(lj, /*vary_vertices=*/false, options);

  std::printf(
      "\nExpectation (paper): FilterRefineSky grows smoothly and stays\n"
      "well below BaseSky at every scale; BaseSky's runtime climbs much\n"
      "more sharply.\n");
  return 0;
}
