// Repeated-query serving: cold Solve() vs a warm core::Engine on the
// Table-1 stand-in graphs. The engine answers from cached graph artifacts
// (filter candidates, blooms, 2-hop lists) and pooled scratch, so warm
// queries should beat cold ones while staying bit-identical -- this harness
// measures that gap and records it in the nsky.bench.v1 report.
#include <cstdio>

#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Engine serving",
                "cold Solve() vs warm Engine::Query(), stand-in datasets");

  const uint32_t threads = bench::BenchThreads(argc, argv);
  constexpr int kWarmQueries = 20;
  constexpr core::Algorithm kAlgorithms[] = {core::Algorithm::kFilterRefine,
                                             core::Algorithm::kBase2Hop};

  bench::JsonReporter report("bench_engine_repeat");
  bench::Table table({"dataset", "algo", "cold_s", "first_s", "warm_s",
                      "speedup", "skyline"},
                     12);
  table.PrintHeader();

  for (const auto& spec : datasets::AllStandins()) {
    graph::Graph g =
        datasets::MakeStandin(spec, datasets::StandinScale::kSmall);
    for (core::Algorithm algorithm : kAlgorithms) {
      core::SolverOptions options;
      options.algorithm = algorithm;
      options.threads = threads;

      util::Timer cold_timer;
      core::SkylineResult cold = core::Solve(g, options);
      const double cold_s = cold_timer.Seconds();

      core::Engine engine{graph::Graph(g)};
      util::Timer first_timer;
      core::SkylineResult first = engine.Query(options);
      const double first_s = first_timer.Seconds();

      core::SkylineResult warm;
      util::Timer warm_timer;
      for (int i = 0; i < kWarmQueries; ++i) warm = engine.Query(options);
      const double warm_s = warm_timer.Seconds() / kWarmQueries;

      if (warm.skyline != cold.skyline ||
          warm.stats.aux_peak_bytes != cold.stats.aux_peak_bytes) {
        std::printf("ERROR: warm result diverged on %s\n", spec.name.c_str());
        return 1;
      }
      const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
      table.PrintRow({spec.name, core::AlgorithmName(algorithm),
                      bench::FmtSecs(cold_s), bench::FmtSecs(first_s),
                      bench::FmtSecs(warm_s), bench::Fmt(speedup, "%.1fx"),
                      bench::FmtU(first.skyline.size())});
      report.AddRow()
          .Str("dataset", spec.name)
          .Str("algo", core::AlgorithmName(algorithm))
          .U64("threads", threads)
          .U64("n", g.NumVertices())
          .U64("m", g.NumEdges())
          .F64("cold_seconds", cold_s)
          .F64("first_query_seconds", first_s)
          .F64("warm_query_seconds", warm_s)
          .F64("warm_speedup", speedup)
          .U64("skyline_size", first.skyline.size())
          .U64("aux_peak_bytes", first.stats.aux_peak_bytes);
    }
  }

  std::printf(
      "\nExpectation: warm queries skip the filter/bloom/2-hop builds, so\n"
      "warm_s < cold_s on every dataset (largest gap for 2hop, whose\n"
      "dominant cost is the cached materialization); results stay\n"
      "bit-identical, checked above.\n");
  return report.Write() ? 0 : 1;
}
