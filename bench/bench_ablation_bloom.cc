// Ablation (beyond the paper's figures): how much each ingredient of
// FilterRefineSky contributes.
//  (a) bloom width sweep: wider filters prune more candidate pairs before
//      the exact NBRcheck (Lemma 2's false-positive rate in action);
//  (b) no-bloom variant: candidate filter only;
//  (c) per-algorithm counter comparison on one dataset.
#include "bench_util.h"
#include "core/nsky.h"
#include "datasets/registry.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Ablation", "bloom-filter width and pruning counters");

  graph::Graph g =
      datasets::MakeStandin("youtube", datasets::StandinScale::kFull).value();
  std::printf("dataset: youtube stand-in (n=%u, m=%llu, dmax=%u)\n\n",
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()),
              g.MaxDegree());

  bench::Table sweep({"bloom_bits", "time_s", "bloom_prunes",
                      "exact_checks", "nbr_elems"},
                     14);
  std::printf("-- FilterRefineSky bloom width sweep --\n");
  sweep.PrintHeader();
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);
  options.use_bloom = false;
  {
    util::Timer t;
    auto r = core::Solve(g, options);
    sweep.PrintRow({"off", bench::FmtSecs(t.Seconds()),
                    bench::FmtU(r.stats.bloom_prunes),
                    bench::FmtU(r.stats.inclusion_tests),
                    bench::FmtU(r.stats.nbr_elements_scanned)});
  }
  options.use_bloom = true;
  for (uint32_t bits : {64u, 256u, 1024u, 4096u, 16384u}) {
    options.bloom_bits = bits;
    util::Timer t;
    auto r = core::Solve(g, options);
    sweep.PrintRow({bench::FmtU(bits), bench::FmtSecs(t.Seconds()),
                    bench::FmtU(r.stats.bloom_prunes),
                    bench::FmtU(r.stats.inclusion_tests),
                    bench::FmtU(r.stats.nbr_elements_scanned)});
  }

  std::printf("\n-- pruning counters across algorithms --\n");
  bench::Table counters({"algorithm", "pairs", "degree_prunes",
                         "bloom_prunes", "exact_checks", "candidates"},
                        15);
  counters.PrintHeader();
  {
    auto r = core::Solve(g, bench::With(options, core::Algorithm::kBaseSky));
    counters.PrintRow({"BaseSky", bench::FmtU(r.stats.pairs_examined), "-",
                       "-", "-", "-"});
  }
  {
    auto r = core::Solve(g, bench::With(options, core::Algorithm::kBaseCSet));
    counters.PrintRow({"BaseCSet", bench::FmtU(r.stats.pairs_examined), "-",
                       "-", "-", bench::FmtU(r.stats.candidate_count)});
  }
  {
    auto r = core::Solve(g, bench::With(options, core::Algorithm::kBase2Hop));
    counters.PrintRow({"Base2Hop", bench::FmtU(r.stats.pairs_examined),
                       bench::FmtU(r.stats.degree_prunes),
                       bench::FmtU(r.stats.bloom_prunes),
                       bench::FmtU(r.stats.inclusion_tests), "-"});
  }
  {
    auto r = core::Solve(g, bench::With(options, core::Algorithm::kFilterRefine));
    counters.PrintRow({"FilterRefine", bench::FmtU(r.stats.pairs_examined),
                       bench::FmtU(r.stats.degree_prunes),
                       bench::FmtU(r.stats.bloom_prunes),
                       bench::FmtU(r.stats.inclusion_tests),
                       bench::FmtU(r.stats.candidate_count)});
  }

  std::printf(
      "\nExpectation: wider blooms monotonically shift work from exact\n"
      "checks to filter rejections until saturation; the candidate filter\n"
      "plus blooms cut the examined pairs by orders of magnitude vs\n"
      "BaseSky.\n");
  return 0;
}
