// Fig. 2: neighborhood skyline R and candidates C on special graphs
// (clique, complete binary tree, circle, path).
#include "bench_util.h"
#include "core/filter_phase.h"
#include "core/solver.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Fig. 2", "|R| and |C| on special graphs");
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);

  struct Row {
    const char* name;
    graph::Graph g;
    const char* closed_form;
  };
  std::vector<Row> rows;
  rows.push_back({"clique_K32", graph::MakeClique(32), "|R|=|C|=1"});
  rows.push_back({"binary_tree_L6", graph::MakeCompleteBinaryTree(6),
                  "|R|=|C|=internal=31"});
  rows.push_back({"circle_C64", graph::MakeCycle(64), "|R|=|C|=n"});
  rows.push_back({"path_P64", graph::MakePath(64), "|R|=|C|=n-2"});

  bench::Table table({"graph", "n", "m", "|R|", "|C|", "closed_form"}, 16);
  table.PrintHeader();
  for (const auto& row : rows) {
    auto skyline = core::Solve(row.g, options);
    auto candidates = core::FilterPhase(row.g, options);
    table.PrintRow({row.name, bench::FmtU(row.g.NumVertices()),
                    bench::FmtU(row.g.NumEdges()),
                    bench::FmtU(skyline.skyline.size()),
                    bench::FmtU(candidates.skyline.size()), row.closed_form});
  }
  std::printf(
      "\nExpectation: matches Fig. 2's closed forms exactly (also enforced\n"
      "by tests/core/special_graphs_test.cc).\n");
  return 0;
}
