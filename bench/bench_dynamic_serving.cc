// Dynamic-serving trajectory: Engine::ApplyUpdates (epoch commit +
// incremental artifact repair + skyline maintenance) versus the wholesale
// alternative a mutating replica would otherwise run -- RefreshFrom(new
// graph) followed by rebuilding every artifact the replica held.
//
// Perf-trajectory bench; its report is committed as BENCH_dynamic.json. For
// each Table-1 stand-in it warms an engine (filter-refine + 2-hop queries
// plus the maintained skyline cache), then drives rounds of random
// edge-toggle batches down both paths in lockstep:
//
//   incremental -- ApplyUpdates(batch): commit the epoch, repair the dirty
//     vertices' artifacts in place, maintain the cached skyline.
//   rebuild -- RefreshFrom(mutated graph), then rebuild exactly the
//     artifact set the incremental engine holds, then recompute the
//     skyline cache.
//
// After each timed round both engines answer the full query surface
// untimed and the answers are asserted bit-identical (including
// aux_peak_bytes) -- a speedup over wrong answers is worthless. The warm
// filter-refine query after each mutation is also timed as the
// query-availability probe: its p50/p99 is what a caller sees while the
// replica sustains mutations. The sub-32 rows are the small-batch serving
// regime (single edges and small bursts) where incremental repair wins;
// the 48-row crosses DynamicSkyline's bulk threshold (32) and shows the
// bulk re-solve + fallback-drop floor. Note the repaired column: on
// hub-heavy batches PreparedGraph's volume-based fallback may choose to
// drop artifacts instead of patching (repair cost would approach rebuild
// cost), shifting the rebuild into the next warm query -- visible as the
// q_p50 step on fallback-dominated rows.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/bloom.h"
#include "core/engine.h"
#include "core/solver.h"
#include "datasets/registry.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using nsky::core::Engine;
using nsky::core::SkylineResult;
using nsky::core::SolverOptions;
using nsky::graph::EdgeUpdate;
using nsky::graph::Graph;
using nsky::graph::VertexId;

// A batch of `size` random edge toggles: insert when absent, delete when
// present -- every update is effective, so the two paths see identical
// graphs.
std::vector<EdgeUpdate> RandomBatch(const Graph& g, size_t size,
                                    nsky::util::Rng* rng) {
  std::vector<EdgeUpdate> updates;
  const VertexId n = g.NumVertices();
  while (updates.size() < size) {
    VertexId u = static_cast<VertexId>(rng->NextUint64(n));
    VertexId v = static_cast<VertexId>(rng->NextUint64(n));
    if (u == v) continue;
    updates.push_back({u, v, !g.HasEdge(u, v)});
  }
  return updates;
}

bool BitIdentical(const SkylineResult& a, const SkylineResult& b) {
  return a.skyline == b.skyline && a.dominator == b.dominator &&
         a.stats.pairs_examined == b.stats.pairs_examined &&
         a.stats.aux_peak_bytes == b.stats.aux_peak_bytes;
}

// Rebuilds on `engine` (post-RefreshFrom) the artifact set `held_by`
// currently holds, using the same pool width the serving engine resolves.
void RebuildHeldArtifacts(Engine* engine, Engine* held_by,
                          nsky::util::ThreadPool* pool) {
  nsky::core::PreparedGraph& held = held_by->prepared();
  nsky::core::PreparedGraph& fresh = engine->prepared();
  if (held.PeekFilter() != nullptr) fresh.Filter(*pool);
  for (uint32_t bits : held.CandidateBloomWidths()) {
    fresh.CandidateBlooms(bits, *pool);
  }
  for (uint32_t bits : held.FullBloomWidths()) {
    fresh.FullBlooms(bits, *pool);
  }
  if (held.PeekTwoHop() != nullptr) fresh.TwoHop(*pool);
  if (held.PeekDegreeOrder() != nullptr) fresh.DegreeOrder();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nsky;
  bench::Banner("Dynamic serving",
                "Engine::ApplyUpdates vs RefreshFrom + artifact rebuild");

  const uint32_t threads = bench::BenchThreads(argc, argv);
  constexpr size_t kBatchSizes[] = {1, 4, 8, 48};  // 48 crosses bulk=32
  constexpr int kRounds = 8;

  bench::JsonReporter report("bench_dynamic_serving", "BENCH_dynamic");
  bench::Table table({"dataset", "batch", "incr_ms", "rebuild_ms", "speedup",
                      "upd/s", "q_p50_ms", "q_p99_ms", "dirty", "repaired"},
                     12);
  table.PrintHeader();

  util::ThreadPool pool(threads == 0 ? 1 : threads);

  for (const auto& spec : datasets::AllStandins()) {
    Graph base =
        datasets::MakeStandin(spec, datasets::StandinScale::kSmall);

    for (size_t batch_size : kBatchSizes) {
      util::Rng rng(spec.seed + batch_size);
      SolverOptions fr_options;
      fr_options.threads = threads;
      SolverOptions hop_options;
      hop_options.algorithm = core::Algorithm::kBase2Hop;
      hop_options.threads = threads;

      // The serving replica under test: filter/bloom + 2-hop artifacts
      // warm, skyline cache maintained across mutations.
      Engine engine{Graph(base)};
      engine.Query(fr_options);
      engine.Query(hop_options);
      engine.SkylineCache();
      // The rebuild-path replica, kept in lockstep via RefreshFrom.
      Engine rebuilt{Graph(base)};

      double incr_ms = 0.0;
      double rebuild_ms = 0.0;
      uint64_t updates_applied = 0;
      uint64_t dirty = 0;
      uint64_t repaired_rounds = 0;
      std::vector<double> query_ms;
      for (int round = 0; round < kRounds; ++round) {
        std::vector<EdgeUpdate> batch =
            RandomBatch(engine.graph(), batch_size, &rng);

        util::Timer incr_timer;
        Engine::MutationResult outcome = engine.ApplyUpdates(batch);
        incr_ms += incr_timer.Micros() / 1000.0;
        updates_applied += outcome.applied;
        dirty += outcome.dirty_vertices;
        repaired_rounds += outcome.repaired;

        // Query-availability probe: the warm query a caller issues while
        // the replica sustains mutations.
        util::Timer query_timer;
        SkylineResult warm_fr = engine.Query(fr_options);
        query_ms.push_back(query_timer.Micros() / 1000.0);
        SkylineResult warm_hop = engine.Query(hop_options);

        // Rebuild path: wholesale replacement plus rebuilding the same
        // artifact set and the skyline cache.
        util::Timer rebuild_timer;
        rebuilt.RefreshFrom(Graph(engine.graph()));
        RebuildHeldArtifacts(&rebuilt, &engine, &pool);
        rebuilt.SkylineCache();
        rebuild_ms += rebuild_timer.Micros() / 1000.0;

        SkylineResult fresh_fr = rebuilt.Query(fr_options);
        SkylineResult fresh_hop = rebuilt.Query(hop_options);
        if (!BitIdentical(warm_fr, fresh_fr) ||
            !BitIdentical(warm_hop, fresh_hop) ||
            engine.SkylineCache() != rebuilt.SkylineCache()) {
          std::printf("ERROR: warm result diverged on %s batch %zu\n",
                      spec.name.c_str(), batch_size);
          return 1;
        }
      }
      incr_ms /= kRounds;
      rebuild_ms /= kRounds;
      const double speedup = incr_ms > 0 ? rebuild_ms / incr_ms : 0.0;
      const double upd_per_s =
          incr_ms > 0 ? (static_cast<double>(updates_applied) / kRounds) /
                            (incr_ms / 1000.0)
                      : 0.0;
      const double q_p50 = bench::Percentile(query_ms, 0.50);
      const double q_p99 = bench::Percentile(query_ms, 0.99);

      table.PrintRow({spec.name, bench::FmtU(batch_size),
                      bench::Fmt(incr_ms, "%.2f"),
                      bench::Fmt(rebuild_ms, "%.2f"),
                      bench::Fmt(speedup, "%.1fx"),
                      bench::Fmt(upd_per_s, "%.0f"),
                      bench::Fmt(q_p50, "%.2f"), bench::Fmt(q_p99, "%.2f"),
                      bench::FmtU(dirty / kRounds),
                      bench::FmtU(repaired_rounds)});
      report.AddRow()
          .Str("dataset", spec.name)
          .U64("threads", threads)
          .U64("n", base.NumVertices())
          .U64("m", base.NumEdges())
          .U64("batch", batch_size)
          .U64("rounds", kRounds)
          .F64("incr_ms", incr_ms)
          .F64("rebuild_ms", rebuild_ms)
          .F64("speedup", speedup)
          .F64("updates_per_sec", upd_per_s)
          .F64("query_p50_ms", q_p50)
          .F64("query_p99_ms", q_p99)
          .U64("dirty_mean", dirty / kRounds)
          .U64("repaired_rounds", repaired_rounds);
    }
  }

  std::printf(
      "\nExpectation: >=5x speedup on the sub-32 rows with repaired == rounds\n"
      "(patching the dirty set and maintaining the skyline incrementally\n"
      "beats rebuilding the filter/bloom/2-hop artifacts wholesale) and\n"
      "q_p50 at warm-solve cost. On the 48-row the maintenance path flips\n"
      "to bulk re-solve + fallback drop (repaired ~0): the op itself is\n"
      "cheap but q_p50 steps up as the next warm query rebuilds artifacts.\n"
      "Every round's warm answers are bit-identical to the rebuilt\n"
      "engine's.\n");
  return report.Write() ? 0 : 1;
}
