// Table I: dataset statistics -- the paper's originals next to the
// scaled-down stand-ins this repository generates (see DESIGN.md for the
// substitution rationale).
#include "bench_util.h"
#include "datasets/registry.h"
#include "graph/stats.h"

int main() {
  using namespace nsky;
  bench::Banner("Table I", "datasets: paper originals vs generated stand-ins");

  bench::Table table({"dataset", "paper_n", "paper_m", "paper_dmax",
                      "standin_n", "standin_m", "standin_dmax", "domain"},
                     13);
  table.PrintHeader();
  for (const auto& spec : datasets::AllStandins()) {
    graph::Graph g = datasets::MakeStandin(spec, datasets::StandinScale::kFull);
    graph::GraphStats s = graph::ComputeStats(g);
    table.PrintRow({spec.name, bench::FmtU(spec.paper_n),
                    bench::FmtU(spec.paper_m), bench::FmtU(spec.paper_dmax),
                    bench::FmtU(s.num_vertices), bench::FmtU(s.num_edges),
                    bench::FmtU(s.max_degree), spec.description});
  }
  std::printf(
      "\nExpectation: stand-ins keep the power-law shape (hub-dominated\n"
      "dmax, same avg-degree ordering) at ~1/10-1/50 of the original n.\n");
  return 0;
}
