// Fig. 6 (Exp-3): sizes of R, C and V on synthetic graphs --
// (a) Erdos-Renyi with p = dp * log(n) / n, dp in {0.2 .. 1.0};
// (b) power-law graphs with exponent beta in {2.6 .. 3.4}.
// n = 100,000 as in the paper.
#include "bench_util.h"
#include "core/filter_phase.h"
#include "core/solver.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace nsky;
  const graph::VertexId n = 100'000;
  core::SolverOptions options;
  options.threads = bench::BenchThreads(argc, argv);

  bench::Banner("Fig. 6(a) (Exp-3)",
                "ER graphs, n = 1e5, p = dp*log(n)/n, vary dp");
  bench::Table er_table({"dp", "m", "skyline|R|", "candidates|C|", "total|V|"},
                        15);
  er_table.PrintHeader();
  for (double dp : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    graph::Graph g = graph::MakeErdosRenyiLogScaled(n, dp, 60);
    uint64_t r = core::Solve(g, options).skyline.size();
    uint64_t c = core::FilterPhase(g, options).skyline.size();
    er_table.PrintRow({bench::Fmt(dp, "%.1f"), bench::FmtU(g.NumEdges()),
                       bench::FmtU(r), bench::FmtU(c), bench::FmtU(n)});
  }

  std::printf("\n");
  bench::Banner("Fig. 6(b) (Exp-3)", "power-law graphs, n = 1e5, vary beta");
  bench::Table pl_table(
      {"beta", "m", "skyline|R|", "candidates|C|", "total|V|"}, 15);
  pl_table.PrintHeader();
  for (double beta : {2.6, 2.8, 3.0, 3.2, 3.4}) {
    graph::Graph g = graph::MakeParetoPowerLaw(n, beta, 61);
    uint64_t r = core::Solve(g, options).skyline.size();
    uint64_t c = core::FilterPhase(g, options).skyline.size();
    pl_table.PrintRow({bench::Fmt(beta, "%.1f"), bench::FmtU(g.NumEdges()),
                       bench::FmtU(r), bench::FmtU(c), bench::FmtU(n)});
  }

  std::printf(
      "\nExpectation (paper): on ER graphs |R| and |C| stay close to |V|\n"
      "for every dp; on power-law graphs both are substantially below |V|\n"
      "for every beta.\n");
  return 0;
}
