#!/usr/bin/env bash
# One-command correctness gate: sanitizer Debug build + full ctest run.
#
# Usage: scripts/check.sh [build-dir]
#
# Configures a Debug build with AddressSanitizer + UBSan (-DNSKY_SANITIZE=ON),
# builds everything, and runs the whole test suite. Use before sending any PR
# that touches a solver or the telemetry layer; a clean run means no memory
# errors, no UB, and no behavioral regressions under the entire gtest suite.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNSKY_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
