#!/usr/bin/env bash
# One-command correctness gate: sanitizer Debug build + full ctest run +
# a parallel-solver CLI smoke test.
#
# Usage: scripts/check.sh [--tsan] [build-dir]
#
# Default mode configures a Debug build with AddressSanitizer + UBSan
# (-DNSKY_SANITIZE=address), builds everything, runs the whole test suite,
# then smoke-runs the CLI's parallel skyline path. Use before sending any PR
# that touches a solver or the telemetry layer; a clean run means no memory
# errors, no UB, and no behavioral regressions under the entire gtest suite.
#
# --tsan switches to ThreadSanitizer (-DNSKY_SANITIZE=thread) and runs the
# suites that exercise the thread pool (util, core, tools) instead of the
# full matrix -- the right gate for changes to src/util/thread_pool.* or the
# parallel sections of the solvers. Data races in the engine surface here
# even on a single-core host.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=address
TEST_FILTER=()
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --tsan)
      SANITIZE=thread
      TEST_FILTER=(-R 'util_tests|core_tests|tools_tests|ParallelDeterminism|ThreadPool')
      ;;
    *)
      BUILD_DIR="$arg"
      ;;
  esac
done
if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR="build-check"
  [[ "$SANITIZE" == thread ]] && BUILD_DIR="build-check-tsan"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNSKY_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  ${TEST_FILTER[@]+"${TEST_FILTER[@]}"}

# Smoke: the full CLI path through the parallel engine, JSON mode. Catches
# wiring regressions (flag parsing, solver dispatch, schema emission) that
# unit tests on RunCli may miss, and races under --tsan.
SMOKE_OUT="$("$BUILD_DIR"/src/tools/nsky skyline --generate pl:20000:2.6:10:7 \
  --algo filter-refine --threads 4 --json)"
echo "$SMOKE_OUT" | grep -q '"schema":"nsky.skyline.v1"'
echo "$SMOKE_OUT" | grep -q '"threads":4'
echo "check.sh: CLI smoke OK (--algo filter-refine --threads 4 --json)"
