#!/usr/bin/env bash
# One-command correctness gate: sanitizer Debug build + full ctest run +
# a parallel-solver CLI smoke test.
#
# Usage: scripts/check.sh [--tsan | --faults | --engine | --observability |
#                          --server | --persist | --chaos | --dynamic]
#                         [build-dir]
#
# Default mode configures a Debug build with AddressSanitizer + UBSan
# (-DNSKY_SANITIZE=address), builds everything, runs the whole test suite,
# then smoke-runs the CLI's parallel skyline path. Use before sending any PR
# that touches a solver or the telemetry layer; a clean run means no memory
# errors, no UB, and no behavioral regressions under the entire gtest suite.
#
# --tsan switches to ThreadSanitizer (-DNSKY_SANITIZE=thread) and runs the
# suites that exercise the thread pool (util, core, tools) instead of the
# full matrix -- the right gate for changes to src/util/thread_pool.* or the
# parallel sections of the solvers. Data races in the engine surface here
# even on a single-core host.
#
# --faults keeps the ASan build but runs the robustness- and persist-labeled
# suites (ctest -L 'robustness|persist': execution context, fault injector,
# IO corpus, interruption, degradation, CLI failure paths, snapshot
# corruption corpus) and then smoke-runs the CLI under NSKY_FAULTS-injected
# failures -- including the persist.* sites -- asserting the documented exit
# codes and the nsky.error.v1 schema. The right gate for changes to the
# hardened runtime (deadlines, cancellation, byte budgets, fault sites).
#
# --engine keeps the ASan build but runs only the engine-labeled suites
# (ctest -L engine: PreparedGraph artifact reuse, pooled workspaces,
# warm-query equivalence, poisoned scratch) and then smoke-runs the CLI's
# --engine/--repeat serving path, asserting warm output equals the cold
# solve. The right gate for changes to core/engine.*, core/prepared_graph.*
# or core/workspace.*.
#
# --observability keeps the ASan build but runs only the
# observability-labeled suites (ctest -L observability: engine stats, flight
# recorder, quantile estimation, Prometheus exporter, metrics-JSON escaping)
# plus the engine suites, then smoke-runs the CLI's introspection surface:
# skyline --engine --stats (both schema documents present), the metrics
# verb, and --metrics-out with a Prometheus-format lint of the output. The
# right gate for changes to util/metrics.*, util/prom_export.*,
# core/engine_stats.*, core/flight_recorder.* or the engine instrumentation.
#
# --server keeps the ASan build but runs only the server-labeled suites
# (ctest -L server: HTTP parser corpus, loopback byte-identity with the CLI,
# shedding/timeouts, concurrent stress) and then smoke-runs `nsky serve`
# over a real loopback socket with plain bash /dev/tcp: skyline body parity
# with the CLI, the nsky.error.v1 404 document, and signal-free shutdown via
# --max-requests. The right gate for changes to src/server/* or the serve
# verb. (--tsan also runs the server suites: the session workers and the
# admission controller are thread-pool code.)
#
# --persist keeps the ASan build but runs only the persist-labeled suites
# (ctest -L persist: save/load round-trip determinism, corruption corpus,
# persist.* fault sites, snapshot CLI verbs, served-from-snapshot parity)
# and then smoke-runs the snapshot lifecycle through the CLI: save -> fsck
# via `snapshot inspect` -> `skyline --snapshot` byte-parity with the cold
# engine -> canonical re-save -> a bit-flipped file failing closed with the
# documented exit code. The right gate for changes to src/persist/* or the
# snapshot verbs. (--tsan also runs the persist suites; ASan covers the
# corruption decoders.)
#
# --chaos keeps the ASan build but runs the chaos- and server-labeled suites
# (ctest -L 'chaos|server': crash-consistent saves, hot reload under
# concurrent load, socket fault sites, client retry policy) and then
# smoke-runs the serving stack with the server.* and persist.* fault sites
# armed through NSKY_FAULTS: a save killed mid-write must leave the old
# snapshot intact plus a partial temp, and a serve under an EINTR storm with
# partial writes must still answer byte-identically to the CLI. The right
# gate for changes to the crash-consistency protocol, the hot-reload path or
# the socket hardening. (--tsan also runs the reload/drain/chaos suites.)
#
# --dynamic keeps the ASan build but runs only the dynamic-labeled suites
# (ctest -L dynamic: versioned graph epochs, incremental artifact repair,
# the Engine::ApplyUpdates oracle matrix, POST /v1/edges drills) and then
# smoke-runs `nsky mutate --verify`: a mixed update batch applied to a warm
# engine must advance the epoch, repair the artifacts, and produce a warm
# result bit-identical to a cold rebuild. The right gate for changes to
# graph/versioned_graph.*, core/dynamic_skyline.*, the repair path in
# core/prepared_graph.* or Engine::ApplyUpdates. (--tsan also runs the
# dynamic suites: mutation and queries race across epochs there.)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=address
MODE=full
TEST_FILTER=()
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --tsan)
      SANITIZE=thread
      MODE=tsan
      TEST_FILTER=(-R 'util_tests|core_tests|tools_tests|ParallelDeterminism|ThreadPool|ExecutionContext|FaultInjection|Interruption|Degradation|CliRobustness|^Server\.|^Service\.|^HttpParser\.|^Snapshot|^Reload|^Chaos\.|^CrashConsistency|^RetryPolicy|^RetryAfter|^ServeLifecycle|^VersionedGraph|^RepairForUpdates|^MutationOracle|^MutateEndpoint|^MutateStress')
      ;;
    --server)
      MODE=server
      TEST_FILTER=(-L server)
      ;;
    --faults)
      MODE=faults
      TEST_FILTER=(-L 'robustness|persist')
      ;;
    --persist)
      MODE=persist
      TEST_FILTER=(-L persist)
      ;;
    --chaos)
      MODE=chaos
      TEST_FILTER=(-L 'chaos|server')
      ;;
    --engine)
      MODE=engine
      TEST_FILTER=(-L engine)
      ;;
    --dynamic)
      MODE=dynamic
      TEST_FILTER=(-L dynamic)
      ;;
    --observability)
      MODE=observability
      TEST_FILTER=(-L 'observability|engine')
      ;;
    *)
      BUILD_DIR="$arg"
      ;;
  esac
done
if [[ -z "$BUILD_DIR" ]]; then
  BUILD_DIR="build-check"
  [[ "$MODE" == tsan ]] && BUILD_DIR="build-check-tsan"
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DNSKY_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
  ${TEST_FILTER[@]+"${TEST_FILTER[@]}"}

NSKY="$BUILD_DIR"/src/tools/nsky

if [[ "$MODE" == faults ]]; then
  # Fault-injected CLI smoke: each armed site must produce its documented
  # exit code, and --json failures must emit the nsky.error.v1 document.
  # `|| code=$?` keeps set -e from killing the script on the expected
  # non-zero exits.

  # Deadline: per-slice delays guarantee a 1ms deadline cannot be met.
  code=0
  OUT="$(NSKY_FAULTS=pool.chunk_delay_ms=5 "$NSKY" skyline \
    --generate ba:5000:3:7 --timeout-ms 1 --json)" || code=$?
  [[ "$code" == 4 ]]
  echo "$OUT" | grep -q '"schema":"nsky.error.v1"'
  echo "$OUT" | grep -q '"code":"DEADLINE_EXCEEDED"'

  # Budget: the ctx.budget site trips the first budgeted check.
  code=0
  NSKY_FAULTS=ctx.budget=1 "$NSKY" skyline --generate ba:2000:3:7 \
    --algo base --max-memory-mb 1024 2>/dev/null >/dev/null || code=$?
  [[ "$code" == 6 ]]

  # IO: a short read surfaces as a load error, strict or not.
  TMP_EDGES="$(mktemp)"
  printf '0 1\n1 2\n2 3\n' > "$TMP_EDGES"
  code=0
  NSKY_FAULTS=io.short_read=2 "$NSKY" stats --input "$TMP_EDGES" \
    2>/dev/null >/dev/null || code=$?
  rm -f "$TMP_EDGES"
  [[ "$code" != 0 ]]

  # Degradation: 2hop under a tight budget completes exactly via
  # filter-refine and records where it degraded from.
  OUT="$("$NSKY" skyline --generate ba:3000:4:7 --algo 2hop \
    --max-memory-mb 1 --json)"
  echo "$OUT" | grep -q '"degraded_from":"2hop"'

  # Persist: the persist.* sites drive save/load failures with the
  # documented IO_ERROR exit (1) and error schema.
  TMP_SNAP="$(mktemp -u)"
  "$NSKY" snapshot save --generate ba:2000:3:7 --output "$TMP_SNAP" >/dev/null
  code=0
  NSKY_FAULTS=persist.short_write=1 "$NSKY" snapshot save \
    --snapshot "$TMP_SNAP" --output "$TMP_SNAP.fail" 2>/dev/null >/dev/null \
    || code=$?
  [[ "$code" == 1 ]]
  code=0
  OUT="$(NSKY_FAULTS=persist.corrupt_section=1 "$NSKY" snapshot load \
    --snapshot "$TMP_SNAP" --json)" || code=$?
  [[ "$code" == 1 ]]
  echo "$OUT" | grep -q '"schema":"nsky.error.v1"'
  echo "$OUT" | grep -q '"code":"IO_ERROR"'
  rm -f "$TMP_SNAP" "$TMP_SNAP.fail"

  echo "check.sh: fault-injection smoke OK (exit codes 4/6, error schema," \
       "2hop degradation, persist.* sites)"
  exit 0
fi

if [[ "$MODE" == persist ]]; then
  # Snapshot lifecycle smoke through the CLI: save a warm engine, fsck it,
  # query from it with byte-parity against a cold engine, re-save it
  # canonically, then corrupt it and watch it fail closed.
  GEN="pl:20000:2.6:10:7"
  TMP_SNAP="$(mktemp -u)"
  "$NSKY" snapshot save --generate "$GEN" --output "$TMP_SNAP" >/dev/null

  # 1. fsck: inspect validates every checksum and reports the layout.
  "$NSKY" snapshot inspect --snapshot "$TMP_SNAP" --json \
    | grep -q '"schema":"nsky.snapshot.v1"'

  # 2. A query served from the snapshot is byte-identical to the cold
  #    engine's (wall time normalized away), for a parallel 2hop run.
  WARM="$("$NSKY" skyline --snapshot "$TMP_SNAP" --algo 2hop --threads 4 --json)"
  COLD="$("$NSKY" skyline --generate "$GEN" --engine --algo 2hop --threads 4 --json)"
  NORM_WARM="$(echo "$WARM" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  NORM_COLD="$(echo "$COLD" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  [[ "$NORM_WARM" == "$NORM_COLD" ]]

  # 3. Re-saving the loaded snapshot is byte-identical (canonical format).
  "$NSKY" snapshot save --snapshot "$TMP_SNAP" --output "$TMP_SNAP.resave" \
    >/dev/null
  cmp -s "$TMP_SNAP" "$TMP_SNAP.resave"

  # 4. A flipped bit anywhere fails closed with the documented exit code.
  cp "$TMP_SNAP" "$TMP_SNAP.bad"
  printf '\xff' | dd of="$TMP_SNAP.bad" bs=1 seek=$(( $(stat -c %s "$TMP_SNAP.bad") - 7 )) conv=notrunc 2>/dev/null
  code=0
  "$NSKY" snapshot load --snapshot "$TMP_SNAP.bad" 2>/dev/null >/dev/null \
    || code=$?
  [[ "$code" == 1 ]]
  code=0
  "$NSKY" snapshot inspect --snapshot "$TMP_SNAP.bad" 2>/dev/null >/dev/null \
    || code=$?
  [[ "$code" == 1 ]]
  rm -f "$TMP_SNAP" "$TMP_SNAP.resave" "$TMP_SNAP.bad"

  echo "check.sh: persist smoke OK (inspect fsck, snapshot query parity," \
       "canonical re-save, bit-flip fails closed)"
  exit 0
fi

if [[ "$MODE" == chaos ]]; then
  # 1. Crash-consistent save: a save killed mid-write (persist.crash_at_byte)
  #    exits with IO_ERROR, leaves the destination bit-identical to the old
  #    snapshot (inspect still passes) plus the partial temp a real kill -9
  #    would leave behind.
  TMP_SNAP="$(mktemp -u)"
  "$NSKY" snapshot save --generate ba:2000:3:7 --output "$TMP_SNAP" >/dev/null
  SUM_BEFORE="$(cksum < "$TMP_SNAP")"
  code=0
  NSKY_FAULTS=persist.crash_at_byte=128 "$NSKY" snapshot save \
    --generate pl:3000:2.6:8:7 --output "$TMP_SNAP" 2>/dev/null >/dev/null \
    || code=$?
  [[ "$code" == 1 ]]
  [[ "$(cksum < "$TMP_SNAP")" == "$SUM_BEFORE" ]]
  [[ -f "$TMP_SNAP.tmp" ]]
  "$NSKY" snapshot inspect --snapshot "$TMP_SNAP" >/dev/null
  rm -f "$TMP_SNAP" "$TMP_SNAP.tmp"

  # 2. Socket chaos: serve through an EINTR storm with every send capped at
  #    7 bytes; the skyline body must still be byte-identical to the CLI's
  #    and the liveness probe must still answer.
  PORT_FILE="$(mktemp)"
  : > "$PORT_FILE"
  NSKY_FAULTS=server.eintr=8,server.partial_write=7 "$NSKY" serve \
    --generate ba:2000:3:7 --port 0 --port-file "$PORT_FILE" \
    --max-requests 2 >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$PORT_FILE" ]] && break
    sleep 0.1
  done
  [[ -s "$PORT_FILE" ]]
  PORT="$(cat "$PORT_FILE")"

  http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf 'GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
  }

  SERVED="$(http_get '/v1/skyline' | tr -d '\r' | sed '1,/^$/d')"
  DIRECT="$("$NSKY" skyline --generate ba:2000:3:7 --engine --json)"
  NORM_SERVED="$(echo "$SERVED" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  NORM_DIRECT="$(echo "$DIRECT" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  [[ "$NORM_SERVED" == "$NORM_DIRECT" ]]
  http_get '/healthz' | grep -q '^ok'
  wait "$SERVER_PID"
  rm -f "$PORT_FILE"

  echo "check.sh: chaos smoke OK (crash-at-byte leaves old snapshot +" \
       "partial temp, serve correct under EINTR storm + partial writes)"
  exit 0
fi

if [[ "$MODE" == dynamic ]]; then
  # 1. Mutate-then-query smoke through the CLI: a small mixed batch against
  #    a warm engine must advance the epoch, repair (not drop) the
  #    artifacts, and --verify must prove the warm result bit-identical to
  #    a cold rebuild on the post-mutation graph.
  TMP_UPDATES="$(mktemp)"
  printf '+ 0 190\n+ 1 191\n- 0 190\n+ 0 190\n' > "$TMP_UPDATES"
  OUT="$("$NSKY" mutate --generate er:200:0.05:7 --updates "$TMP_UPDATES" \
    --threads 2 --verify --json)"
  echo "$OUT" | grep -q '"schema":"nsky.mutate.v1"'
  echo "$OUT" | grep -q '"epoch":1'
  echo "$OUT" | grep -q '"repaired":true'
  echo "$OUT" | grep -q '"verified":true'

  # 2. A malformed update file is a usage error with the documented code.
  printf 'x 1 2\n' > "$TMP_UPDATES"
  code=0
  "$NSKY" mutate --generate er:50:0.1:7 --updates "$TMP_UPDATES" \
    2>/dev/null >/dev/null || code=$?
  [[ "$code" == 2 ]]
  rm -f "$TMP_UPDATES"

  # 3. POST /v1/edges over a real loopback socket: the mutation answers
  #    with the nsky.mutate.v1 document and stamps the new epoch in the
  #    X-Nsky-Epoch header; a second request observes the mutated graph.
  PORT_FILE="$(mktemp)"
  : > "$PORT_FILE"
  "$NSKY" serve --generate er:200:0.05:7 --port 0 --port-file "$PORT_FILE" \
    --max-requests 2 >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$PORT_FILE" ]] && break
    sleep 0.1
  done
  [[ -s "$PORT_FILE" ]]
  PORT="$(cat "$PORT_FILE")"

  BODY='{"updates":[{"op":"insert","u":0,"v":190}]}'
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'POST /v1/edges HTTP/1.1\r\nHost: x\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "${#BODY}" "$BODY" >&3
  MUTATED="$(cat <&3)"
  exec 3<&- 3>&-
  echo "$MUTATED" | grep -q '^HTTP/1.1 200 OK'
  echo "$MUTATED" | grep -qi '^X-Nsky-Epoch: 1'
  echo "$MUTATED" | grep -q '"schema":"nsky.mutate.v1"'

  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'GET /v1/skyline HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
  SERVED="$(cat <&3)"
  exec 3<&- 3>&-
  echo "$SERVED" | grep -qi '^X-Nsky-Epoch: 1'
  wait "$SERVER_PID"
  rm -f "$PORT_FILE"

  echo "check.sh: dynamic smoke OK (mutate --verify bit-identity, bad" \
       "update file rejected, POST /v1/edges advances the served epoch)"
  exit 0
fi

if [[ "$MODE" == engine ]]; then
  # Serving-path smoke: --repeat routes through core::Engine (first query
  # cold, the rest warm); the warm answer must match the one-shot solve
  # exactly, including the aux_peak_bytes ledger.
  GEN="pl:20000:2.6:10:7"
  COLD="$("$NSKY" skyline --generate "$GEN" --algo 2hop --threads 2 --json)"
  WARM="$("$NSKY" skyline --generate "$GEN" --algo 2hop --threads 2 \
    --engine --repeat 5 --json)"
  echo "$WARM" | grep -q '"engine":true'
  echo "$WARM" | grep -q '"repeat":5'
  # Strip the additive engine keys and the wall-time field; everything else
  # (skyline members, every deterministic stat) must be byte-identical.
  NORM_COLD="$(echo "$COLD" | sed -E 's/"seconds":[0-9.e+-]+//')"
  NORM_WARM="$(echo "$WARM" | sed -E 's/"engine":true,"repeat":5,//; s/"seconds":[0-9.e+-]+//')"
  [[ "$NORM_COLD" == "$NORM_WARM" ]]

  # --engine with --algo join is a contradiction the CLI must reject.
  code=0
  "$NSKY" skyline --generate ba:500:3:7 --algo join --engine \
    2>/dev/null >/dev/null || code=$?
  [[ "$code" == 2 ]]

  echo "check.sh: engine smoke OK (--repeat 5 warm output identical to" \
       "cold solve, join+engine rejected)"
  exit 0
fi

if [[ "$MODE" == server ]]; then
  # Serving smoke over a real loopback socket, dependency-free: bash's
  # /dev/tcp is the client. --max-requests makes the server exit on its own
  # (no signals, works under set -e), --port-file removes the race between
  # "server is up" and "client connects".
  PORT_FILE="$(mktemp)"
  : > "$PORT_FILE"
  "$NSKY" serve --standin notredame --scale small --port 0 \
    --port-file "$PORT_FILE" --max-requests 3 >/dev/null &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$PORT_FILE" ]] && break
    sleep 0.1
  done
  [[ -s "$PORT_FILE" ]]
  PORT="$(cat "$PORT_FILE")"

  http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf 'GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3<&- 3>&-
  }

  # 1. The skyline body is the CLI's --engine --json document byte for byte
  #    (wall time normalized away).
  SERVED="$(http_get '/v1/skyline?algo=2hop&threads=2' | tr -d '\r' | sed '1,/^$/d')"
  DIRECT="$("$NSKY" skyline --standin notredame --scale small --algo 2hop \
    --threads 2 --engine --json)"
  NORM_SERVED="$(echo "$SERVED" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  NORM_DIRECT="$(echo "$DIRECT" | sed -E 's/"seconds":[0-9.eE+-]+/"seconds":X/g')"
  [[ "$NORM_SERVED" == "$NORM_DIRECT" ]]

  # 2. An unknown route answers 404 with the nsky.error.v1 document.
  MISS="$(http_get '/no/such/route')"
  echo "$MISS" | grep -q '^HTTP/1.1 404 Not Found'
  echo "$MISS" | grep -q '"schema":"nsky.error.v1"'
  echo "$MISS" | grep -q '"code":"NOT_FOUND"'

  # 3. The liveness probe, and the third request retires the server.
  http_get '/healthz' | grep -q '^ok$'
  wait "$SERVER_PID"
  rm -f "$PORT_FILE"

  echo "check.sh: server smoke OK (loopback body identical to CLI --json," \
       "404 error schema, --max-requests shutdown)"
  exit 0
fi

if [[ "$MODE" == observability ]]; then
  GEN="pl:10000:2.6:8:7"

  # skyline --engine --stats must embed both introspection documents, and
  # the repeat loop must show up as exact cache accounting: one cold query
  # then four warm ones.
  OUT="$("$NSKY" skyline --generate "$GEN" --algo filter-refine --threads 2 \
    --engine --repeat 5 --stats --json)"
  echo "$OUT" | grep -q '"schema":"nsky.engine_stats.v1"'
  echo "$OUT" | grep -q '"schema":"nsky.queries.v1"'
  echo "$OUT" | grep -q '"queries_served":5'
  echo "$OUT" | grep -q '"warm_queries":4'
  echo "$OUT" | grep -q '"cold_queries":1'

  # --stats without an engine is a usage error.
  code=0
  "$NSKY" skyline --generate ba:500:3:7 --stats 2>/dev/null >/dev/null || code=$?
  [[ "$code" == 2 ]]

  # The metrics verb emits the registry in both formats.
  "$NSKY" metrics --format json | grep -q '"schema":"nsky.metrics.v1"'
  "$NSKY" metrics --format prom >/dev/null

  # --metrics-out writes Prometheus exposition text; lint the format: every
  # line is a comment or `name{labels} value`, every metric has a # TYPE
  # line, and histogram buckets end with +Inf.
  TMP_METRICS="$(mktemp)"
  "$NSKY" skyline --generate "$GEN" --algo 2hop --engine --repeat 3 \
    --metrics-out "$TMP_METRICS" >/dev/null
  awk '
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$/ { next }
    /^#/ { print "bad comment: " $0; bad = 1; next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*({[^}]*})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ { next }
    { print "bad line: " $0; bad = 1 }
    END { exit bad }
  ' "$TMP_METRICS"
  grep -q '^nsky_engine_queries_served 3$' "$TMP_METRICS"
  grep -q 'le="+Inf"' "$TMP_METRICS"
  rm -f "$TMP_METRICS"

  echo "check.sh: observability smoke OK (engine stats + flight recorder" \
       "schemas, metrics verb, Prometheus lint)"
  exit 0
fi

# Smoke: the full CLI path through the parallel engine, JSON mode. Catches
# wiring regressions (flag parsing, solver dispatch, schema emission) that
# unit tests on RunCli may miss, and races under --tsan.
SMOKE_OUT="$("$NSKY" skyline --generate pl:20000:2.6:10:7 \
  --algo filter-refine --threads 4 --json)"
echo "$SMOKE_OUT" | grep -q '"schema":"nsky.skyline.v1"'
echo "$SMOKE_OUT" | grep -q '"threads":4'
echo "check.sh: CLI smoke OK (--algo filter-refine --threads 4 --json)"
