#!/usr/bin/env bash
# Regenerates the committed perf-trajectory reports (BENCH_*.json).
#
# Usage: scripts/bench_trajectory.sh [build-dir]
#
# Configures a Release build, builds the trajectory bench binaries, and runs
# them from the repo root so each report lands next to the sources it
# belongs to (bench_serving_latency -> ./BENCH_serving.json,
# bench_server_load -> ./BENCH_server.json, bench_snapshot_cold_start ->
# ./BENCH_persist.json, bench_dynamic_serving -> ./BENCH_dynamic.json).
# Commit the refreshed files with the change that moved the numbers; the
# diff IS the perf trajectory.
#
# Numbers are machine-dependent: compare relative shape (warm vs cold,
# p99/p50 spread) across commits from the same machine, not absolute
# microseconds across machines.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_serving_latency bench_server_load bench_snapshot_cold_start \
           bench_dynamic_serving

# Trajectory benches write their committed report into the repo root.
unset NSKY_BENCH_JSON NSKY_BENCH_JSON_DIR
"$BUILD_DIR"/bench/bench_serving_latency
"$BUILD_DIR"/bench/bench_server_load
"$BUILD_DIR"/bench/bench_snapshot_cold_start
"$BUILD_DIR"/bench/bench_dynamic_serving

echo "bench_trajectory.sh: refreshed BENCH_serving.json BENCH_server.json" \
     "BENCH_persist.json BENCH_dynamic.json"
